//===-- tests/driver/telemetry_test.cpp - VmTelemetry schema tests --------===//
//
// VmTelemetry is the machine-diffable observability surface: one snapshot,
// one fixed schema, two serializations (key=value text and JSON) emitted
// through the same code path. These tests pin the contract external
// tooling depends on — the header line, the key set and its order being
// identical across every VM configuration, and the JSON mirroring the text
// schema exactly — so a drive-by counter addition that forgets one side
// fails here instead of in someone's dashboard.
//
//===----------------------------------------------------------------------===//

#include "driver/isolate.h"
#include "driver/vm.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

using namespace mself;

namespace {

/// Splits \p S into lines (without terminators).
std::vector<std::string> lines(const std::string &S) {
  std::vector<std::string> Out;
  size_t Pos = 0;
  while (Pos < S.size()) {
    size_t Nl = S.find('\n', Pos);
    if (Nl == std::string::npos)
      Nl = S.size();
    Out.push_back(S.substr(Pos, Nl - Pos));
    Pos = Nl + 1;
  }
  return Out;
}

/// The ordered key list ("section.key") of a text dump, header excluded.
std::vector<std::string> keysOf(const std::string &Text) {
  std::vector<std::string> Keys;
  std::vector<std::string> Ls = lines(Text);
  for (size_t I = 1; I < Ls.size(); ++I) {
    size_t Eq = Ls[I].find('=');
    EXPECT_NE(Eq, std::string::npos) << "malformed line: " << Ls[I];
    if (Eq != std::string::npos)
      Keys.push_back(Ls[I].substr(0, Eq));
  }
  return Keys;
}

/// Runs a small workload so every subsystem has non-trivial counters.
void warm(VirtualMachine &VM) {
  std::string Err;
  int64_t Out = 0;
  ASSERT_TRUE(VM.load(
      "hot: n = ( | t <- 0. i <- 0 | [ i < n ] whileTrue: "
      "[ i: i + 1. t: t + (i % 3) ]. t )",
      Err))
      << Err;
  for (int I = 0; I < 6; ++I)
    ASSERT_TRUE(VM.evalInt("hot: 30", Out, Err)) << Err;
  VM.settleBackgroundCompiles();
}

} // namespace

// The first line identifies the schema version and the configuration; every
// following line is exactly `section.key=value`.
TEST(Telemetry, HeaderAndLineGrammar) {
  VirtualMachine VM(Policy::newSelf());
  warm(VM);
  std::string Text = VM.telemetry().formatStats();
  std::vector<std::string> Ls = lines(Text);
  ASSERT_GT(Ls.size(), 10u);

  std::string Head = "miniself.telemetry schema=" +
                     std::to_string(VmTelemetry::kSchemaVersion) +
                     " policy=" + VM.policy().Name + " background=";
  EXPECT_EQ(Ls[0].rfind(Head, 0), 0u) << Ls[0];
  EXPECT_NE(Ls[0].find(" collector="), std::string::npos) << Ls[0];

  for (size_t I = 1; I < Ls.size(); ++I) {
    const std::string &L = Ls[I];
    size_t Dot = L.find('.');
    size_t Eq = L.find('=');
    ASSERT_NE(Dot, std::string::npos) << L;
    ASSERT_NE(Eq, std::string::npos) << L;
    EXPECT_LT(Dot, Eq) << L;
    // Values are plain unsigned integers or fixed-point decimals.
    for (size_t C = Eq + 1; C < L.size(); ++C)
      EXPECT_TRUE((L[C] >= '0' && L[C] <= '9') || L[C] == '.') << L;
  }
}

// The key set and its order are configuration-independent: a parser written
// against one dump reads every dump. Exercised across optimizing/
// non-optimizing policies, tiering on/off, background on/off, and both
// collectors, warmed and fresh.
TEST(Telemetry, KeyOrderIdenticalAcrossConfigurations) {
  std::vector<Policy> Configs;
  Configs.push_back(Policy::newSelf());
  Configs.push_back(Policy::st80());
  Configs.push_back(Policy::oldSelf());
  {
    Policy P = Policy::newSelf();
    P.TieredCompilation = true;
    P.TierUpThreshold = 3;
    P.BackgroundCompile = true;
    Configs.push_back(P);
  }
  {
    Policy P = Policy::newSelf();
    P.GenerationalGc = true;
    Configs.push_back(P);
  }

  std::vector<std::string> Reference;
  for (size_t I = 0; I < Configs.size(); ++I) {
    VirtualMachine VM(Configs[I]);
    std::vector<std::string> Fresh = keysOf(VM.telemetry().formatStats());
    warm(VM);
    std::vector<std::string> Warmed = keysOf(VM.telemetry().formatStats());
    EXPECT_EQ(Fresh, Warmed) << "config " << I;
    if (I == 0)
      Reference = Warmed;
    else
      EXPECT_EQ(Warmed, Reference) << "config " << I;
  }
  ASSERT_FALSE(Reference.empty());
}

// Both serializations come from one emitter walk, so the JSON must contain
// every text key under its section object — and nothing else.
TEST(Telemetry, JsonMirrorsTextSchema) {
  VirtualMachine VM(Policy::newSelf());
  warm(VM);
  VmTelemetry T = VM.telemetry();
  std::string Json = T.toJson();

  EXPECT_EQ(Json.rfind("{\n", 0), 0u);
  EXPECT_EQ(Json.substr(Json.size() - 2), "}\n");
  EXPECT_NE(Json.find("\"schema\": " +
                      std::to_string(VmTelemetry::kSchemaVersion)),
            std::string::npos);
  EXPECT_NE(Json.find("\"policy\": \"" + T.PolicyName + "\""),
            std::string::npos);

  int Depth = 0;
  for (char C : Json) {
    if (C == '{')
      ++Depth;
    else if (C == '}')
      --Depth;
    EXPECT_GE(Depth, 0);
  }
  EXPECT_EQ(Depth, 0);

  std::string Section;
  size_t JsonKeys = 0;
  for (const std::string &K : keysOf(T.formatStats())) {
    size_t Dot = K.find('.');
    std::string Sec = K.substr(0, Dot), Key = K.substr(Dot + 1);
    if (Sec != Section) {
      EXPECT_NE(Json.find("\"" + Sec + "\": {"), std::string::npos) << Sec;
      Section = Sec;
    }
    EXPECT_NE(Json.find("\"" + Key + "\":"), std::string::npos) << K;
    ++JsonKeys;
  }
  EXPECT_GT(JsonKeys, 40u); // The schema is substantial; a truncated
                            // emitter walk would shrink this.
}

// Schema v5: the gc section reports the bounded pause histograms —
// percentile/max keys split by scavenge vs full pauses, plus the
// incremental-marking counters — in place of the old unbounded per-pause
// vector. The values must be internally consistent: one histogram sample
// per collection, monotone percentiles bounded by the running max.
TEST(Telemetry, GcPauseHistogramKeys) {
  Policy P = Policy::newSelf();
  P.GcNurseryKiB = 4; // Tiny nursery: the churn below must scavenge.
  P.GcPromotionAge = 1;
  VirtualMachine VM(P);
  std::string Err;
  int64_t Out = 0;
  ASSERT_TRUE(VM.load("churn: n = ( | t <- 0 | 1 to: n Do: [ :i | "
                      "t: t + (vectorOfSize: 8) size ]. t )",
                      Err))
      << Err;
  ASSERT_TRUE(VM.evalInt("churn: 2000", Out, Err)) << Err;
  ASSERT_EQ(Out, 16000);

  VmTelemetry T = VM.telemetry();
  std::string Text = T.formatStats();
  for (const char *K :
       {"gc.satb_marks=", "gc.mark_increments=", "gc.sweep_increments=",
        "gc.mark_cycles=", "gc.scavenge_pause_p50_seconds=",
        "gc.scavenge_pause_p95_seconds=", "gc.scavenge_pause_p99_seconds=",
        "gc.scavenge_pause_max_seconds=", "gc.full_pause_p50_seconds=",
        "gc.full_pause_p95_seconds=", "gc.full_pause_p99_seconds=",
        "gc.full_pause_max_seconds="})
    EXPECT_NE(Text.find(K), std::string::npos) << K;

  EXPECT_GT(T.Gc.Scavenges, 0u);
  EXPECT_EQ(T.Gc.ScavengePauses.Samples, T.Gc.Scavenges);
  EXPECT_LE(T.Gc.ScavengePauses.percentileSeconds(0.50),
            T.Gc.ScavengePauses.percentileSeconds(0.99));
  EXPECT_LE(T.Gc.ScavengePauses.percentileSeconds(0.99),
            T.Gc.ScavengePauses.MaxSeconds + 1e-12);
  EXPECT_GT(T.Gc.ScavengePauses.MaxSeconds, 0.0);
}

// A snapshot is plain data decoupled from the live VM: formatting it twice
// is bit-identical, and running more work afterwards changes a later
// snapshot but never the one already taken.
TEST(Telemetry, SnapshotIsImmutablePlainData) {
  VirtualMachine VM(Policy::newSelf());
  warm(VM);
  VmTelemetry T = VM.telemetry();
  std::string A = T.formatStats();
  std::string Err;
  int64_t Out = 0;
  ASSERT_TRUE(VM.evalInt("hot: 30", Out, Err)) << Err;
  std::string B = T.formatStats();
  EXPECT_EQ(A, B);
  // The live VM moved on.
  EXPECT_GT(VM.telemetry().Exec.Instructions, T.Exec.Instructions);
}

// The server roll-up: per-isolate snapshots in creation order, aggregate
// sums over them, shared-tier and compile-service counters, and the same
// grammar rules as VmTelemetry for its own text serialization.
TEST(Telemetry, ServerRollupAggregatesIsolates) {
  SharedRuntime RT(1);
  std::unique_ptr<Isolate> A = RT.createIsolate();
  std::unique_ptr<Isolate> B = RT.createIsolate();
  warm(A->vm());
  warm(B->vm());

  ServerTelemetry T = RT.serverTelemetry();
  ASSERT_EQ(T.Isolates.size(), 2u);
  EXPECT_EQ(T.ServiceWorkers, 1u);
  EXPECT_GT(T.Shared.InternedStrings, 0u);
  // Both isolates loaded the identical source: one parse, one reuse.
  EXPECT_GE(T.Shared.AstHits, 1u);
  EXPECT_GE(T.Shared.AstMisses, 1u);

  ServerTelemetry::Aggregate Agg = T.aggregate();
  EXPECT_EQ(Agg.Sends, T.Isolates[0].Exec.Sends + T.Isolates[1].Exec.Sends);
  EXPECT_EQ(Agg.Instructions,
            T.Isolates[0].Exec.Instructions + T.Isolates[1].Exec.Instructions);
  EXPECT_EQ(Agg.BaselineCompiles, T.Isolates[0].Tier.BaselineCompiles +
                                      T.Isolates[1].Tier.BaselineCompiles);
  // Sends may be 0 under the full newself policy (statically bound and
  // inlined away), but instructions always execute.
  EXPECT_GT(Agg.Instructions, 0u);

  // Second isolate's compiles should have probed the tier — the compile
  // traffic partition (shared hits + publishes + local fallbacks) accounts
  // for every keyed-or-unkeyable compile path entered.
  EXPECT_GT(Agg.SharedHits + Agg.SharedPublishes + Agg.SharedLocalFallbacks,
            0u);
  EXPECT_EQ(T.crossIsolateHitRate(), T.Shared.hitRate());
  // Pause histograms merge across isolates (schema v2's agg roll-up).
  EXPECT_EQ(Agg.ScavengePauses.Samples,
            T.Isolates[0].Gc.ScavengePauses.Samples +
                T.Isolates[1].Gc.ScavengePauses.Samples);
  EXPECT_EQ(Agg.FullPauses.Samples, T.Isolates[0].Gc.FullPauses.Samples +
                                        T.Isolates[1].Gc.FullPauses.Samples);

  // Text serialization: header + strict `section.key=value` grammar.
  std::string Text = T.formatStats();
  std::vector<std::string> Ls = lines(Text);
  ASSERT_GT(Ls.size(), 10u);
  std::string Head = "miniself.server_telemetry schema=" +
                     std::to_string(ServerTelemetry::kSchemaVersion) +
                     " isolates=2";
  EXPECT_EQ(Ls[0].rfind(Head, 0), 0u) << Ls[0];
  for (size_t I = 1; I < Ls.size(); ++I) {
    size_t Dot = Ls[I].find('.');
    size_t Eq = Ls[I].find('=');
    ASSERT_NE(Dot, std::string::npos) << Ls[I];
    ASSERT_NE(Eq, std::string::npos) << Ls[I];
    EXPECT_LT(Dot, Eq) << Ls[I];
  }

  // JSON mirrors every text key and embeds one object per isolate.
  std::string Json = T.toJson();
  for (const std::string &K : keysOf(Text)) {
    std::string Key = K.substr(K.find('.') + 1);
    EXPECT_NE(Json.find("\"" + Key + "\":"), std::string::npos) << K;
  }
  EXPECT_NE(Json.find("\"per_isolate\": ["), std::string::npos);
  // Two embedded VmTelemetry objects, each with its own policy marker.
  size_t Pos = 0, Embedded = 0;
  while ((Pos = Json.find("\"policy\":", Pos)) != std::string::npos) {
    ++Embedded;
    Pos += 1;
  }
  EXPECT_EQ(Embedded, 2u);

  B.reset();
  A.reset();
  EXPECT_EQ(RT.isolateCount(), 0u);
}
