//===-- tests/driver/isolate_test.cpp - Isolate-isolation battery ----------===//
//
// The correctness contract of multi-isolate server mode: isolates sharing a
// SharedRuntime behave exactly like standalone VirtualMachines. Sharing
// (interned selectors, parsed ASTs, compiled-code artifacts) may only
// short-cut compilation, never change results; mutable state — heap, maps,
// dispatch caches, quickened code — never crosses isolates, so a shape
// mutation in one isolate is invisible to its neighbours; and the shared
// tier's refcounts drain cleanly when isolates tear down (the churn test
// doubles as a use-after-free probe under ASan).
//
//===----------------------------------------------------------------------===//

#include "driver/isolate.h"
#include "driver/vm.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <numeric>
#include <random>
#include <string>
#include <thread>
#include <vector>

using namespace mself;

namespace {

/// A small mixed corpus: arithmetic, loops, recursion, closures, objects,
/// polymorphic sends, vectors — enough variety that shared artifacts cover
/// every compiler path the interpreter tier exercises.
struct Program {
  const char *Defs;
  const char *Expr;
  int64_t Expected;
};

const Program kCorpus[] = {
    {"sumUpTo: n = ( | s <- 0. i <- 1 | "
     "[ i <= n ] whileTrue: [ s: s + i. i: i + 1 ]. s )",
     "sumUpTo: 100", 5050},
    {"fib: n = ( n < 2 ifTrue: [ n ] False: "
     "[ (fib: n - 1) + (fib: n - 2) ] )",
     "fib: 12", 144},
    {"mkAdder: n = ( [ :x | x + n ] )", "(mkAdder: 10) value: 32", 42},
    {"counter = ( | parent* = lobby. n <- 0. "
     "bump = ( n: n + 1. n ) | )",
     "counter bump. counter bump. counter bump", 3},
    {"shapeA = ( | parent* = lobby. area = ( 10 ) | ). "
     "shapeB = ( | parent* = lobby. area = ( 20 ) | ). "
     "sumAreas = ( | t <- 0. s | 1 to: 10 Do: [ :i | "
     "s: (i even ifTrue: [ shapeA ] False: [ shapeB ]). "
     "t: t + s area ]. t )",
     "sumAreas", 150},
    {"fill: n = ( | v. s <- 0 | v: (vectorOfSize: n). "
     "0 upTo: n Do: [ :i | v at: i Put: i * 2 ]. "
     "v do: [ :e | s: s + e ]. s )",
     "fill: 10", 90},
    {"grid = ( | t <- 0 | 1 to: 5 Do: [ :i | 1 to: 5 Do: [ :j | "
     "t: t + (i * j) ] ]. t )",
     "grid", 225},
    {"", "2 + 3 * 4 - 5", 15},
};
constexpr size_t kCorpusSize = sizeof(kCorpus) / sizeof(kCorpus[0]);

/// Runs the whole corpus in \p VM in \p Order, recording each program's
/// result (or an impossible marker on failure) into \p Results by corpus
/// index. No gtest assertions: callers run this on worker threads.
void runCorpus(VirtualMachine &VM, const std::vector<size_t> &Order,
               std::vector<int64_t> &Results) {
  Results.assign(kCorpusSize, INT64_MIN);
  for (size_t Idx : Order) {
    const Program &P = kCorpus[Idx];
    std::string Err;
    if (P.Defs[0] && !VM.load(P.Defs, Err))
      return;
    int64_t V = 0;
    if (!VM.evalInt(P.Expr, V, Err))
      return;
    Results[Idx] = V;
  }
  VM.settleBackgroundCompiles();
}

std::vector<size_t> shuffledOrder(uint32_t Seed) {
  std::vector<size_t> Order(kCorpusSize);
  std::iota(Order.begin(), Order.end(), size_t{0});
  std::mt19937 Rng(Seed);
  std::shuffle(Order.begin(), Order.end(), Rng);
  return Order;
}

} // namespace

// N isolates of one SharedRuntime, each on its own thread, each running
// the corpus in a different shuffled order, must compute exactly what N
// sequential standalone VirtualMachines compute. This is the end-to-end
// equivalence claim of server mode, with cross-isolate artifact reuse and
// single-flight compile races happening live underneath.
TEST(Isolate, ShuffledCorpusMatchesSequential) {
  constexpr int N = 4;

  // Sequential baseline: N fresh standalone VMs, natural order.
  std::vector<size_t> Natural(kCorpusSize);
  std::iota(Natural.begin(), Natural.end(), size_t{0});
  std::vector<std::vector<int64_t>> Sequential(N);
  for (int I = 0; I < N; ++I) {
    VirtualMachine VM;
    runCorpus(VM, Natural, Sequential[I]);
  }

  // Server mode: N isolates, N threads, shuffled per-thread orders.
  SharedRuntime RT(2);
  std::vector<std::unique_ptr<Isolate>> Isolates;
  for (int I = 0; I < N; ++I)
    Isolates.push_back(RT.createIsolate());
  std::vector<std::vector<int64_t>> Threaded(N);
  {
    std::vector<std::thread> Threads;
    for (int I = 0; I < N; ++I)
      Threads.emplace_back([&, I] {
        runCorpus(Isolates[I]->vm(), shuffledOrder(0xC0FFEE + I),
                  Threaded[I]);
      });
    for (std::thread &T : Threads)
      T.join();
  }

  for (int I = 0; I < N; ++I)
    for (size_t P = 0; P < kCorpusSize; ++P) {
      EXPECT_EQ(Sequential[I][P], kCorpus[P].Expected)
          << "sequential VM " << I << " program " << P;
      EXPECT_EQ(Threaded[I][P], kCorpus[P].Expected)
          << "isolate " << I << " program " << P;
    }

  // The point of sharing: later isolates rode on earlier isolates' work.
  SharedTierStats S = RT.tier().statsSnapshot();
  EXPECT_GT(S.AstHits, 0u);
  Isolates.clear();
}

// A shape mutation in isolate A (new slot on its lobby) invalidates and
// de-quickens code in A only. B's compiled code, inline caches, and
// quickened sites are untouched — the shared tier forks keys instead of
// invalidating across isolates.
TEST(Isolate, ShapeMutationInANeverTouchesB) {
  SharedRuntime RT(1);
  std::unique_ptr<Isolate> A = RT.createIsolate();
  std::unique_ptr<Isolate> B = RT.createIsolate();

  const char *Defs = "hot: n = ( | t <- 0. i <- 0 | [ i < n ] whileTrue: "
                     "[ i: i + 1. t: t + (i % 3) ]. t )";
  std::string Err;
  int64_t Out = 0;
  ASSERT_TRUE(A->vm().load(Defs, Err)) << Err;
  ASSERT_TRUE(B->vm().load(Defs, Err)) << Err;
  for (int I = 0; I < 8; ++I) {
    ASSERT_TRUE(A->vm().evalInt("hot: 30", Out, Err)) << Err;
    ASSERT_TRUE(B->vm().evalInt("hot: 30", Out, Err)) << Err;
  }
  A->vm().settleBackgroundCompiles();
  B->vm().settleBackgroundCompiles();

  VmTelemetry Before = B->vm().telemetry();

  // Mutate shape in A: defining new lobby slots mutates A's lobby map (and
  // runs A's invalidation fan-out).
  ASSERT_TRUE(A->vm().load("extraSlotOne = ( 1 ). extraSlotTwo = ( 2 )", Err))
      << Err;
  ASSERT_TRUE(A->vm().evalInt("extraSlotOne + extraSlotTwo", Out, Err)) << Err;
  EXPECT_EQ(Out, 3);

  // B saw nothing: no invalidations, no cache flushes, no de-quickening.
  VmTelemetry After = B->vm().telemetry();
  EXPECT_EQ(After.Tier.Invalidations, Before.Tier.Invalidations);
  EXPECT_EQ(After.Tier.InvalidatedFunctions, Before.Tier.InvalidatedFunctions);
  EXPECT_EQ(After.Dispatch.InlineCacheFlushes,
            Before.Dispatch.InlineCacheFlushes);
  EXPECT_EQ(After.Dispatch.Dequickenings, Before.Dispatch.Dequickenings);
  EXPECT_EQ(After.Dispatch.DequickenedSites, Before.Dispatch.DequickenedSites);
  EXPECT_EQ(After.Dispatch.GlcInvalidations, Before.Dispatch.GlcInvalidations);

  // And B still runs its (never-invalidated) code correctly.
  ASSERT_TRUE(B->vm().evalInt("hot: 30", Out, Err)) << Err;
  EXPECT_EQ(Out, 30);

  // The converse holds too: A's own invalidation machinery did fire.
  EXPECT_GT(A->vm().telemetry().Dispatch.InlineCacheFlushes,
            Before.Dispatch.InlineCacheFlushes);

  B.reset();
  A.reset();
}

// Shared-tier refcount hygiene: isolates churn (create, load, run, tear
// down) against one SharedRuntime; after every teardown the tier must be
// the sole owner of the cached program again (use count 1), and the
// program/artifact populations must stay flat after the first iteration —
// no growth, no dangling owners. Run under ASan, this is also the
// use-after-free probe for artifacts outliving their producer isolate.
TEST(Isolate, SharedTierRefcountHygieneAcrossTeardown) {
  SharedRuntime RT(1);
  const std::string Defs = "churn: n = ( | s <- 0 | 1 to: n Do: [ :i | "
                           "s: s + (i * i) ]. s )";

  size_t StablePrograms = 0, StableArtifacts = 0;
  for (int Iter = 0; Iter < 40; ++Iter) {
    {
      std::unique_ptr<Isolate> I = RT.createIsolate();
      std::string Err;
      int64_t Out = 0;
      ASSERT_TRUE(I->vm().load(Defs, Err)) << Err;
      ASSERT_TRUE(I->vm().evalInt("churn: 10", Out, Err)) << Err;
      EXPECT_EQ(Out, 385);
      // While the isolate lives, it co-owns the parsed program.
      EXPECT_GE(RT.tier().programUseCount(Defs), 2);
    }
    // Isolate gone: the tier is the sole owner again.
    EXPECT_EQ(RT.tier().programUseCount(Defs), 1) << "iteration " << Iter;
    EXPECT_EQ(RT.isolateCount(), 0u);

    if (Iter == 0) {
      StablePrograms = RT.tier().programCount();
      StableArtifacts = RT.tier().artifactCount();
      EXPECT_GT(StablePrograms, 0u);
    } else {
      EXPECT_EQ(RT.tier().programCount(), StablePrograms) << Iter;
      EXPECT_EQ(RT.tier().artifactCount(), StableArtifacts) << Iter;
    }
  }

  // The churn was served by the cache: one parse, one compile per key.
  SharedTierStats S = RT.tier().statsSnapshot();
  EXPECT_GE(S.AstHits, 39u);
  EXPECT_GT(S.hitRate(), 0.9);
}

// Concurrent isolate creation and teardown against one runtime: the
// registry, the tier, and the service survive interleaved lifecycles
// (TSan-facing; no ordering asserted beyond "nothing crashes or leaks").
TEST(Isolate, ConcurrentLifecycleChurn) {
  SharedRuntime RT(2);
  std::vector<std::thread> Threads;
  for (int T = 0; T < 4; ++T)
    Threads.emplace_back([&RT, T] {
      for (int Iter = 0; Iter < 6; ++Iter) {
        std::unique_ptr<Isolate> I = RT.createIsolate();
        std::string Err;
        int64_t Out = 0;
        if (!I->vm().evalInt("f" + std::to_string(T) +
                                 " = ( | s <- 0 | 1 to: 20 Do: [ :i | "
                                 "s: s + i ]. s ). f" +
                                 std::to_string(T),
                             Out, Err))
          return;
      }
    });
  for (std::thread &T : Threads)
    T.join();
  EXPECT_EQ(RT.isolateCount(), 0u);
}
