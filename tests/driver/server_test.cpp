//===-- tests/driver/server_test.cpp - Shared compile-tier/service tests ---===//
//
// The server-mode machinery under contention: the single-flight artifact
// cache (concurrent cold starts of the same key produce exactly one cached
// artifact, every claim resolves), the shared compile service draining
// multiple isolates' tier-up queues, per-isolate saturation fallback
// (service load never changes an isolate's bounded-queue semantics), and
// clean shutdown with work still queued. These run in the check-tsan and
// check-asan matrices, including a second MINISELF_GC_STRESS=1 pass.
//
// The environment can force background compilation on or off
// (MINISELF_BG_COMPILE folds into every policy); tests that need a
// specific mode skip rather than fail.
//
//===----------------------------------------------------------------------===//

#include "driver/isolate.h"
#include "driver/vm.h"
#include "interp/compile_queue.h"
#include "interp/compile_service.h"

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

using namespace mself;

namespace {

Policy bgPolicy(int Threshold = 3) {
  Policy P = Policy::newSelf();
  P.TieredCompilation = true;
  P.TierUpThreshold = Threshold;
  P.BackgroundCompile = true;
  return P;
}

const char *kHot = "hot: n = ( | t <- 0. i <- 0 | [ i < n ] whileTrue: "
                   "[ i: i + 1. t: t + (i % 3) ]. t )";

/// A reusable one-shot start barrier: threads park in wait() until the
/// main thread release()s them all at once — maximizing the cold-start
/// compile race the single-flight test wants.
class StartGate {
public:
  void wait() {
    std::unique_lock<std::mutex> L(M);
    CV.wait(L, [this] { return Open; });
  }
  void release() {
    {
      std::lock_guard<std::mutex> L(M);
      Open = true;
    }
    CV.notify_all();
  }

private:
  std::mutex M;
  std::condition_variable CV;
  bool Open = false;
};

} // namespace

// Eight isolates race cold through the identical workload. Single-flight:
// every artifact key is compiled and published exactly once process-wide
// (misses == fills + unportable marks — each claim resolves, none twice),
// and the artifact population equals the fill count. Everyone still
// computes the right answer, losers by rehydrating the winner's artifact.
TEST(Server, ConcurrentColdStartIsSingleFlight) {
  constexpr int N = 8;
  SharedRuntime RT(2);
  std::vector<std::unique_ptr<Isolate>> Isolates;
  for (int I = 0; I < N; ++I)
    Isolates.push_back(RT.createIsolate());

  StartGate Gate;
  std::atomic<int> Wrong{0};
  std::vector<std::thread> Threads;
  for (int I = 0; I < N; ++I)
    Threads.emplace_back([&, I] {
      Gate.wait();
      VirtualMachine &VM = Isolates[I]->vm();
      std::string Err;
      int64_t Out = 0;
      if (!VM.load(kHot, Err) || !VM.evalInt("hot: 30", Out, Err) ||
          Out != 30)
        ++Wrong;
      VM.settleBackgroundCompiles();
    });
  Gate.release();
  for (std::thread &T : Threads)
    T.join();
  EXPECT_EQ(Wrong.load(), 0);

  SharedTierStats S = RT.tier().statsSnapshot();
  // Every claim resolved exactly once; no key was ever filled twice.
  EXPECT_EQ(S.CodeMisses, S.CodeFills + S.CodeUnportableMarks);
  EXPECT_EQ(S.Artifacts, S.CodeFills);
  EXPECT_EQ(RT.tier().artifactCount(), S.CodeFills);
  // One parse total for the shared source; seven isolates rode on it.
  EXPECT_GE(S.AstHits, static_cast<uint64_t>(N - 1));
  // The storm shared: most probes after the first compile were hits.
  EXPECT_GT(S.CodeHits, 0u);

  Isolates.clear();
}

// Per-isolate saturation semantics survive service mode: an isolate whose
// bounded queue has zero capacity takes the synchronous promotion fallback
// no matter how idle the shared pool is — saturation is a queue property,
// not a service property.
TEST(Server, SaturatedQueueFallsBackPerIsolate) {
  SharedRuntime RT(2);
  Policy P = bgPolicy();
  P.BackgroundQueueCap = 0;
  std::unique_ptr<Isolate> Starved = RT.createIsolate(P);
  std::unique_ptr<Isolate> Healthy = RT.createIsolate(bgPolicy());
  if (!Starved->vm().backgroundQueue())
    GTEST_SKIP() << "background compilation disabled by environment";

  std::string Err;
  int64_t Out = 0;
  ASSERT_TRUE(Starved->vm().load(kHot, Err)) << Err;
  ASSERT_TRUE(Healthy->vm().load(kHot, Err)) << Err;
  for (int I = 0; I < 8; ++I) {
    ASSERT_TRUE(Starved->vm().evalInt("hot: 40", Out, Err)) << Err;
    EXPECT_EQ(Out, 40);
    ASSERT_TRUE(Healthy->vm().evalInt("hot: 40", Out, Err)) << Err;
    EXPECT_EQ(Out, 40);
  }
  Starved->vm().settleBackgroundCompiles();
  Healthy->vm().settleBackgroundCompiles();

  // The starved isolate ran its promotions synchronously (it evaluates
  // first each round, so no shared artifact can pre-empt its first
  // promotion); nothing was ever enqueued through its zero-capacity queue.
  TierStats SS = Starved->vm().telemetry().Tier;
  EXPECT_GE(SS.BackgroundSyncFallbacks, 1u);
  EXPECT_EQ(SS.BackgroundEnqueued, 0u);

  Healthy.reset();
  Starved.reset();
}

// Isolates with jobs still queued tear down while the service stays up
// (pending jobs dropped, in-flight jobs finished before detach returns),
// and the service then shuts down cleanly. The test passing at all — no
// hang in detach, no use-after-free of a destroyed queue under ASan/TSan —
// is the assertion.
TEST(Server, ShutdownWithWorkStillQueued) {
  for (int Round = 0; Round < 4; ++Round) {
    SharedRuntime RT(1);
    std::vector<std::unique_ptr<Isolate>> Isolates;
    for (int I = 0; I < 3; ++I)
      Isolates.push_back(RT.createIsolate(bgPolicy(2)));
    for (std::unique_ptr<Isolate> &I : Isolates) {
      if (!I->vm().backgroundQueue())
        GTEST_SKIP() << "background compilation disabled by environment";
      std::string Err;
      int64_t Out = 0;
      ASSERT_TRUE(I->vm().load(kHot, Err)) << Err;
      // Enough evals to trip promotions; no settle — shut down with the
      // enqueued work in whatever state the worker reached.
      for (int E = 0; E < 4; ++E)
        ASSERT_TRUE(I->vm().evalInt("hot: 25", Out, Err)) << Err;
    }
    Isolates.clear(); // Queues detach with jobs possibly queued/in flight.
  }
}

// The shared pool actually drains multiple isolates' promotion queues:
// with background compilation on for every isolate, the service executes
// their jobs, safepoint installs still happen per isolate, and results
// stay correct throughout.
TEST(Server, ServiceDrainsMultipleIsolates) {
  constexpr int N = 3;
  SharedRuntime RT(2);
  std::vector<std::unique_ptr<Isolate>> Isolates;
  for (int I = 0; I < N; ++I)
    Isolates.push_back(RT.createIsolate(bgPolicy(2)));
  if (!Isolates[0]->vm().backgroundQueue())
    GTEST_SKIP() << "background compilation disabled by environment";

  std::atomic<int> Wrong{0};
  std::vector<std::thread> Threads;
  for (int I = 0; I < N; ++I)
    Threads.emplace_back([&, I] {
      VirtualMachine &VM = Isolates[I]->vm();
      std::string Err;
      int64_t Out = 0;
      if (!VM.load(kHot, Err)) {
        ++Wrong;
        return;
      }
      for (int E = 0; E < 12; ++E)
        if (!VM.evalInt("hot: 30", Out, Err) || Out != 30) {
          ++Wrong;
          return;
        }
      VM.settleBackgroundCompiles();
    });
  for (std::thread &T : Threads)
    T.join();
  EXPECT_EQ(Wrong.load(), 0);

  // The pool ran jobs (unless every promotion was served by a shared
  // artifact before its queue ever saw it — also a success mode).
  uint64_t Promoted = 0, SharedHits = 0;
  for (std::unique_ptr<Isolate> &I : Isolates) {
    TierStats T = I->vm().telemetry().Tier;
    Promoted += T.BackgroundInstalled + T.Promotions;
    SharedHits += T.SharedHits;
  }
  EXPECT_GT(Promoted + SharedHits, 0u);
  EXPECT_EQ(RT.compileService().attachedCount(),
            static_cast<size_t>(N)); // Still attached until teardown.

  Isolates.clear();
  EXPECT_EQ(RT.compileService().attachedCount(), 0u);
}
