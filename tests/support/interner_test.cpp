//===-- tests/support/interner_test.cpp - StringInterner unit tests --------===//

#include "support/interner.h"

#include <gtest/gtest.h>

using namespace mself;

TEST(StringInterner, SameContentsSamePointer) {
  StringInterner In;
  const std::string *A = In.intern("hello");
  const std::string *B = In.intern(std::string("hel") + "lo");
  EXPECT_EQ(A, B);
  EXPECT_EQ(*A, "hello");
}

TEST(StringInterner, DifferentContentsDifferentPointer) {
  StringInterner In;
  EXPECT_NE(In.intern("a"), In.intern("b"));
  EXPECT_EQ(In.size(), 2u);
}

TEST(StringInterner, EmptyString) {
  StringInterner In;
  const std::string *E = In.intern("");
  EXPECT_EQ(E, In.intern(""));
  EXPECT_TRUE(E->empty());
}

TEST(StringInterner, PointersStableAcrossGrowth) {
  StringInterner In;
  const std::string *First = In.intern("stable");
  for (int I = 0; I < 1000; ++I)
    In.intern("filler" + std::to_string(I));
  EXPECT_EQ(First, In.intern("stable"));
}
