//===-- tests/support/stats_test.cpp - SampleStats unit tests -------------===//

#include "support/stats.h"

#include <gtest/gtest.h>

using namespace mself;

TEST(SampleStats, SingleSample) {
  SampleStats S;
  S.add(42.0);
  EXPECT_DOUBLE_EQ(S.min(), 42.0);
  EXPECT_DOUBLE_EQ(S.max(), 42.0);
  EXPECT_DOUBLE_EQ(S.median(), 42.0);
  EXPECT_DOUBLE_EQ(S.percentile(75.0), 42.0);
  EXPECT_DOUBLE_EQ(S.mean(), 42.0);
}

TEST(SampleStats, MedianOfOddCount) {
  SampleStats S;
  for (double X : {5.0, 1.0, 3.0})
    S.add(X);
  EXPECT_DOUBLE_EQ(S.median(), 3.0);
}

TEST(SampleStats, MedianOfEvenCountInterpolates) {
  SampleStats S;
  for (double X : {1.0, 2.0, 3.0, 4.0})
    S.add(X);
  EXPECT_DOUBLE_EQ(S.median(), 2.5);
}

TEST(SampleStats, PercentileEndpoints) {
  SampleStats S;
  for (double X : {10.0, 20.0, 30.0, 40.0, 50.0})
    S.add(X);
  EXPECT_DOUBLE_EQ(S.percentile(0.0), 10.0);
  EXPECT_DOUBLE_EQ(S.percentile(100.0), 50.0);
  EXPECT_DOUBLE_EQ(S.percentile(75.0), 40.0);
}

TEST(SampleStats, MinMaxMeanUnsorted) {
  SampleStats S;
  for (double X : {7.0, -2.0, 9.0, 0.0})
    S.add(X);
  EXPECT_DOUBLE_EQ(S.min(), -2.0);
  EXPECT_DOUBLE_EQ(S.max(), 9.0);
  EXPECT_DOUBLE_EQ(S.mean(), 3.5);
  EXPECT_EQ(S.size(), 4u);
}
