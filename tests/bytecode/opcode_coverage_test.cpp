//===-- tests/bytecode/opcode_coverage_test.cpp - Opcode completeness -----===//
//
// Two completeness properties over the full Op enum:
//
//  1. Every opcode EXECUTES somewhere in the suite. An organic corpus run
//     across the compiler presets covers everything the code generators
//     emit (including runtime-quickened sends and peephole-fused
//     superinstructions); a hand-assembled function drives the remainder —
//     ops whose emission depends on specific optimizer patterns — through
//     Interpreter::callFunction so the assertion cannot rot when codegen
//     heuristics shift. The always-on ExecCounters::PerOp histogram is the
//     witness.
//
//  2. Every opcode DISASSEMBLES: a synthetic all-ops stream walks through
//     disassemble() end-to-end with each mnemonic present, re-checking the
//     arity table against the printer (a drifted arity would desync every
//     following instruction).
//
//===----------------------------------------------------------------------===//

#include "bytecode/disasm.h"

#include "driver/vm.h"
#include "parser/ast.h"

#include <gtest/gtest.h>

#include <array>
#include <string>
#include <vector>

using namespace mself;

namespace {

using Histogram = std::array<uint64_t, static_cast<size_t>(kNumOps)>;

void accumulate(Histogram &H, VirtualMachine &VM) {
  const ExecCounters &C = VM.interp().counters();
  for (int I = 0; I < kNumOps; ++I)
    H[static_cast<size_t>(I)] += C.PerOp[I];
}

/// Runs \p Defs then \p Exprs under \p P and folds the per-op counts into
/// \p H.
void runCorpus(Histogram &H, Policy P, const std::string &Defs,
               const std::vector<std::string> &Exprs) {
  VirtualMachine VM(std::move(P));
  std::string Err;
  ASSERT_TRUE(VM.load(Defs, Err)) << Err;
  for (const std::string &E : Exprs) {
    int64_t Out = 0;
    ASSERT_TRUE(VM.evalInt(E, Out, Err)) << E << ": " << Err;
  }
  accumulate(H, VM);
}

/// Tiny assembler for the hand-built functions: appends one instruction,
/// with branch-target operands resolved to "the next instruction" so every
/// path falls through linearly.
class Asm {
public:
  /// \p Operands uses kNext placeholders for jump-target slots.
  static constexpr int32_t kNext = INT32_MIN;

  void emit(Op O, std::initializer_list<int32_t> Operands) {
    ASSERT_EQ(static_cast<int>(Operands.size()), opArity(O))
        << opName(O) << " operand count";
    int32_t At = static_cast<int32_t>(Code.size());
    int32_t Next = At + 1 + static_cast<int32_t>(Operands.size());
    Code.push_back(static_cast<int32_t>(O));
    for (int32_t V : Operands)
      Code.push_back(V == kNext ? Next : V);
  }

  std::vector<int32_t> Code;
};

} // namespace

TEST(OpcodeCoverage, EveryOpcodeExecutes) {
  Histogram H{};

  // --- Organic corpus: what the compilers emit, across the preset span. ---
  // st80: generic sends everywhere (quickening rewrites the monomorphic
  // ones), primitives via Prim, closures with environments, and a `^`
  // non-local return from a non-inlined block unit.
  runCorpus(
      H, Policy::st80(),
      "obj = ( | parent* = lobby. n <- 0. k = 7. bump = ( n: n + 1 ) | ). "
      "cur <- 0. "
      "drive = ( | i <- 0. t <- 0 | [ i < 20 ] whileTrue: "
      "[ i: i + 1. cur bump. t: t + cur n + cur k ]. t ). "
      "early: lim = ( 1 to: 50 Do: [ :i | i * i > lim ifTrue: [ ^ i ] ]. 0 )",
      {"cur: obj. drive", "early: 40", "(15 / 2) + (15 % 4)"});

  // newself: customized field access, raw/checked arithmetic, type tests,
  // array ops, comparisons, and the default-on superinstruction fusion.
  const char *NewselfDefs =
      "acc = ( | parent* = lobby. n <- 0. bump: d = ( n: n + d. n ) | ). "
      "cur <- 0. "
      "tri: n = ( | s <- 0 | 1 upTo: n Do: [ :i | s: s + i ]. s ). "
      "fill: n = ( | v. t <- 0 | v: (vectorOfSize: n). "
      "1 to: n Do: [ :i | v at: i - 1 Put: i * i ]. "
      "1 to: n Do: [ :i | t: t + (v at: i - 1) ]. t ). "
      "fib: n = ( n < 2 ifTrue: [ n ] False: "
      "[ (fib: n - 1) + (fib: n - 2) ] ). "
      "mix: n = ( | t <- 0. i <- 0 | [ i < n ] whileTrue: "
      "[ i: i + 1. t: t + (cur bump: i) + (i % 3) + (i / 2) ]. t )";
  const std::vector<std::string> NewselfExprs = {
      "tri: 12", "fill: 8", "fib: 10", "cur: acc. mix: 9"};
  runCorpus(H, Policy::newSelf(), NewselfDefs, NewselfExprs);
  // The same programs with fusion off keep the unfused forms of the pairs
  // (Move/Jump/BrCmp/CmpValue/GetField...) in the executed mix.
  Policy NoFuse = Policy::newSelf();
  NoFuse.Superinstructions = false;
  runCorpus(H, NoFuse, NewselfDefs, NewselfExprs);
  // oldself rounds out the preset span (local splitting + type prediction
  // without the iterative analysis).
  runCorpus(H, Policy::oldSelf(), NewselfDefs, NewselfExprs);
  // The BBV tier: every first execution of a block version dispatches a
  // BbvStub, and the customized `n` loads in acc's methods ride behind
  // slot-tag guard cells (the field only ever holds small ints).
  Policy Bbv = Policy::newSelf();
  Bbv.BbvTier = true;
  runCorpus(H, Bbv, NewselfDefs, NewselfExprs);

  // --- Synthetic fill-in: ops whose organic emission depends on optimizer
  // patterns. Executed through callFunction on a hand-assembled unit. ---
  Policy P = Policy::newSelf();
  VirtualMachine VM(P);
  std::string Err;
  ASSERT_TRUE(
      VM.load("synthHost = ( | parent* = lobby. f <- 11 | )", Err))
      << Err;
  Interpreter::Outcome Host = VM.eval("synthHost");
  ASSERT_TRUE(Host.Ok) << Host.Message;
  Value Obj = Host.Result;

  Asm A;
  const auto Eq = static_cast<int32_t>(Cond::Eq);
  A.emit(Op::LoadInt, {1, 5});
  A.emit(Op::LoadInt, {2, 3});
  A.emit(Op::LoadConst, {3, 1});
  A.emit(Op::Move, {4, 1});
  A.emit(Op::Move2, {5, 1, 6, 2});
  A.emit(Op::AddRaw, {7, 1, 2});
  A.emit(Op::SubRaw, {7, 1, 2});
  A.emit(Op::MulRaw, {7, 1, 2});
  A.emit(Op::AddRawImm, {7, 1, 9, 8});
  A.emit(Op::SubRawImm, {7, 1, 9, 8});
  A.emit(Op::AddCk, {7, 1, 2, Asm::kNext});
  A.emit(Op::SubCk, {7, 1, 2, Asm::kNext});
  A.emit(Op::MulCk, {7, 1, 2, Asm::kNext});
  A.emit(Op::DivCk, {7, 1, 2, Asm::kNext});
  A.emit(Op::ModCk, {7, 1, 2, Asm::kNext});
  A.emit(Op::AddCkImm, {7, 1, 9, 8, Asm::kNext});
  A.emit(Op::SubCkImm, {7, 1, 9, 8, Asm::kNext}); // r7 = 5 - 9 = -4.
  A.emit(Op::CmpValue, {9, Eq, 1, 1});
  A.emit(Op::BrTrue, {9, Asm::kNext, Asm::kNext});
  A.emit(Op::CmpValueBr, {9, Eq, 1, 2, Asm::kNext, Asm::kNext});
  A.emit(Op::BrCmp, {Eq, 1, 2, Asm::kNext});
  A.emit(Op::BrCmpImm, {Eq, 1, 5, 10, Asm::kNext});
  A.emit(Op::TestInt, {1, Asm::kNext});
  A.emit(Op::TestMap, {0, 0, Asm::kNext});
  A.emit(Op::Jump, {Asm::kNext});
  A.emit(Op::MoveJump, {4, 1, Asm::kNext});
  A.emit(Op::MakeEnv, {11, 2, -1});
  A.emit(Op::LoadInt, {13, 1});
  A.emit(Op::EnvSet, {11, 0, 0, 1});
  A.emit(Op::EnvGet, {12, 11, 0, 0});
  A.emit(Op::ArrAtPutRaw, {11, 13, 1});
  A.emit(Op::ArrAtRaw, {12, 11, 13});
  A.emit(Op::ArrSize, {14, 11});
  A.emit(Op::ArrAt, {12, 11, 13, Asm::kNext});
  A.emit(Op::ArrAtPut, {11, 13, 2, Asm::kNext});
  A.emit(Op::GetField, {15, 0, 0});
  A.emit(Op::SetField, {0, 0, 1});
  A.emit(Op::GetFieldMove, {15, 0, 0, 16});
  A.emit(Op::GetFieldConst, {15, 0, 0});
  A.emit(Op::SetFieldConst, {0, 0, 2});
  // Arena forms: the optimizer emits these only for closures it proves
  // non-escaping, so drive them synthetically. The env and block are
  // created and dropped; frame exit releases both arena objects.
  A.emit(Op::MakeEnvArena, {17, 1, -1});
  A.emit(Op::MakeBlockArena, {18, 0, 17, 0});
  A.emit(Op::Return, {7});

  static ast::BlockExpr SynthBlock;
  CompiledFunction Synth;
  Synth.Code = A.Code;
  Synth.NumRegs = 20;
  Synth.NumArgs = 0;
  Synth.Literals = {Obj, Value::fromInt(42)};
  Synth.MapPool = {VM.world().mapOf(Obj)};
  Synth.BlockPool = {&SynthBlock};
  Interpreter::Outcome O = VM.interp().callFunction(&Synth, Obj, {});
  ASSERT_TRUE(O.Ok) << O.Message;
  ASSERT_TRUE(O.Result.isInt());
  EXPECT_EQ(O.Result.asInt(), -4);
  // SetField wrote r1 (5) into the host's data slot; SetFieldConst then
  // overwrote it with r2 (3) through the literal-pool path.
  int64_t FieldNow = 0;
  ASSERT_TRUE(VM.evalInt("synthHost f", FieldNow, Err)) << Err;
  EXPECT_EQ(FieldNow, 3);

  // Halt runs in its own unit — it must abort with the internal error, and
  // that abort is itself the op executing.
  CompiledFunction HaltFn;
  HaltFn.Code = {static_cast<int32_t>(Op::Halt)};
  HaltFn.NumRegs = 1;
  Interpreter::Outcome HO = VM.interp().callFunction(&HaltFn, Obj, {});
  EXPECT_FALSE(HO.Ok);
  EXPECT_NE(HO.Message.find("Halt"), std::string::npos) << HO.Message;
  accumulate(H, VM);

  for (int I = 0; I < kNumOps; ++I)
    EXPECT_GT(H[static_cast<size_t>(I)], 0u)
        << "opcode never executed: " << opName(static_cast<Op>(I));
}

TEST(OpcodeCoverage, EveryOpcodeDisassembles) {
  // One instruction per opcode, zero-valued operands, one-entry pools so
  // the decorated operands (selector/literal/map) resolve.
  VirtualMachine VM(Policy::newSelf());
  static const std::string Sel = "syntheticSelector";

  CompiledFunction Fn;
  size_t Expected = 0;
  for (int I = 0; I < kNumOps; ++I) {
    Op O = static_cast<Op>(I);
    Fn.Code.push_back(static_cast<int32_t>(O));
    for (int A = 0; A < opArity(O); ++A)
      Fn.Code.push_back(0);
    ++Expected;
  }
  Fn.Literals = {VM.world().nilValue()};
  Fn.MapPool = {VM.world().mapOf(VM.world().lobbyValue())};
  Fn.SelectorPool = {&Sel};

  std::string Listing = disassemble(Fn);
  // The walk stayed aligned: one line per instruction plus the header.
  size_t Lines = 0;
  for (char C : Listing)
    if (C == '\n')
      ++Lines;
  EXPECT_EQ(Lines, Expected + 1);
  for (int I = 0; I < kNumOps; ++I)
    EXPECT_NE(Listing.find(opName(static_cast<Op>(I))), std::string::npos)
        << "missing from listing: " << opName(static_cast<Op>(I));
  // Quickened sends decorate their selector like the generic Send.
  EXPECT_NE(Listing.find(Sel), std::string::npos);
}

TEST(OpcodeCoverage, JumpOperandLayoutsAreSane) {
  for (int I = 0; I < kNumOps; ++I) {
    Op O = static_cast<Op>(I);
    int Slots[2] = {0, 0};
    int N = opJumpOperands(O, Slots);
    ASSERT_GE(N, 0) << opName(O);
    ASSERT_LE(N, 2) << opName(O);
    for (int J = 0; J < N; ++J) {
      EXPECT_GE(Slots[J], 1) << opName(O);
      EXPECT_LE(Slots[J], opArity(O)) << opName(O);
    }
  }
  // Spot-check the layouts the fuser depends on.
  int S[2];
  ASSERT_EQ(opJumpOperands(Op::Jump, S), 1);
  EXPECT_EQ(S[0], 1);
  ASSERT_EQ(opJumpOperands(Op::BrTrue, S), 2);
  EXPECT_EQ(S[0], 2);
  EXPECT_EQ(S[1], 3);
  ASSERT_EQ(opJumpOperands(Op::CmpValueBr, S), 2);
  EXPECT_EQ(S[0], 5);
  EXPECT_EQ(S[1], 6);
  ASSERT_EQ(opJumpOperands(Op::MoveJump, S), 1);
  EXPECT_EQ(S[0], 3);
  EXPECT_EQ(opJumpOperands(Op::Move, S), 0);
  EXPECT_EQ(opJumpOperands(Op::SendMono, S), 0);
}
