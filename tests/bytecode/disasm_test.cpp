//===-- tests/bytecode/disasm_test.cpp - Bytecode/disassembler tests --------===//

#include "bytecode/disasm.h"

#include "driver/vm.h"

#include <gtest/gtest.h>

using namespace mself;

TEST(Bytecode, ArityTableCoversEveryOpcode) {
  for (int O = 0; O < kNumOps; ++O) {
    EXPECT_GE(opArity(static_cast<Op>(O)), 0);
    EXPECT_STRNE(opName(static_cast<Op>(O)), "?");
  }
}

namespace {

/// Compiles a program under \p P and disassembles every cached function;
/// the disassembler walking cleanly end-to-end re-checks instruction
/// alignment on real compiler output.
void disassembleAll(const Policy &P, const char *Defs, const char *Expr) {
  VirtualMachine VM(P);
  std::string Err;
  ASSERT_TRUE(VM.load(Defs, Err)) << Err;
  int64_t Out = 0;
  ASSERT_TRUE(VM.evalInt(Expr, Out, Err)) << Err;
  VM.code().forEach([](const CompiledFunction &Fn) {
    std::string Listing = disassemble(Fn);
    EXPECT_NE(Listing.find("function"), std::string::npos);
    // Every listing ends in a control transfer; spot-check it mentions one.
    bool HasTerminator = Listing.find("return") != std::string::npos ||
                         Listing.find("jump") != std::string::npos ||
                         Listing.find("halt") != std::string::npos ||
                         Listing.find("nl_return") != std::string::npos;
    EXPECT_TRUE(HasTerminator) << Listing;
  });
}

const char *kDefs =
    "triangleNumber: n = ( | sum <- 0 | 1 upTo: n Do: [ :i | "
    "sum: sum + i ]. sum ). "
    "poly = ( | v | v: (vectorOfSize: 2). v at: 0 Put: 3. v at: 1 Put: nil."
    " ((v at: 0) isNil) asBit + (triangleNumber: 10) )";

} // namespace

TEST(Bytecode, DisassemblesSt80Output) {
  disassembleAll(Policy::st80(), kDefs, "poly");
}

TEST(Bytecode, DisassemblesOldSelfOutput) {
  disassembleAll(Policy::oldSelf(), kDefs, "poly");
}

TEST(Bytecode, DisassemblesNewSelfOutput) {
  disassembleAll(Policy::newSelf(), kDefs, "poly");
}

TEST(Bytecode, CodeSizeAccountsPools) {
  VirtualMachine VM(Policy::st80());
  std::string Err;
  ASSERT_TRUE(VM.load("k = ( 'a string literal' size + 1 )", Err)) << Err;
  int64_t Out = 0;
  ASSERT_TRUE(VM.evalInt("k", Out, Err)) << Err;
  EXPECT_EQ(Out, 17);
  VM.code().forEach([](const CompiledFunction &Fn) {
    EXPECT_GE(Fn.sizeInBytes(),
              Fn.Code.size() * sizeof(int32_t)); // Pools only add.
  });
}
