//===-- tests/vm/value_test.cpp - Tagged value unit tests ------------------===//

#include "vm/value.h"

#include "vm/heap.h"
#include "vm/object.h"

#include <gtest/gtest.h>

using namespace mself;

TEST(Value, DefaultIsEmpty) {
  Value V;
  EXPECT_TRUE(V.isEmpty());
  EXPECT_FALSE(V.isInt());
  EXPECT_FALSE(V.isObject());
}

TEST(Value, IntRoundTrip) {
  for (int64_t I : {int64_t(0), int64_t(1), int64_t(-1), int64_t(123456789),
                    kMinSmallInt, kMaxSmallInt}) {
    Value V = Value::fromInt(I);
    EXPECT_TRUE(V.isInt());
    EXPECT_EQ(V.asInt(), I);
  }
}

TEST(Value, SmallIntBounds) {
  EXPECT_TRUE(fitsSmallInt(0));
  EXPECT_TRUE(fitsSmallInt(kMinSmallInt));
  EXPECT_TRUE(fitsSmallInt(kMaxSmallInt));
  EXPECT_FALSE(fitsSmallInt(kMaxSmallInt + 1));
  EXPECT_FALSE(fitsSmallInt(kMinSmallInt - 1));
}

TEST(Value, ObjectRoundTrip) {
  Heap H;
  Map *M = H.newMap(ObjectKind::Plain, "t");
  Object *O = H.allocPlain(M);
  Value V = Value::fromObject(O);
  EXPECT_TRUE(V.isObject());
  EXPECT_EQ(V.asObject(), O);
  EXPECT_FALSE(V.isInt());
}

TEST(Value, IdentityComparison) {
  Heap H;
  Map *M = H.newMap(ObjectKind::Plain, "t");
  Object *A = H.allocPlain(M);
  Object *B = H.allocPlain(M);
  EXPECT_TRUE(Value::fromObject(A).identicalTo(Value::fromObject(A)));
  EXPECT_FALSE(Value::fromObject(A).identicalTo(Value::fromObject(B)));
  EXPECT_TRUE(Value::fromInt(7).identicalTo(Value::fromInt(7)));
  EXPECT_FALSE(Value::fromInt(7).identicalTo(Value::fromInt(8)));
}

TEST(Value, IntsAndObjectsNeverIdentical) {
  Heap H;
  Map *M = H.newMap(ObjectKind::Plain, "t");
  Object *O = H.allocPlain(M);
  EXPECT_FALSE(Value::fromInt(0).identicalTo(Value::fromObject(O)));
}

TEST(Value, DescribeInt) {
  EXPECT_EQ(Value::fromInt(-17).describe(), "-17");
}
