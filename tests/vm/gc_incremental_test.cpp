//===-- tests/vm/gc_incremental_test.cpp - Incremental SATB marking --------===//
//
// The incremental old-space collector at the heap level: the
// Idle -> Marking -> Sweeping phase machine driven through safepoint
// slices, the snapshot-at-the-beginning deletion barrier, allocate-black
// births, lazy chunked sweeping, the remembered-set purge at the flip, and
// the bounded pause histograms that replaced the per-pause vector.
// End-to-end correctness under real programs is covered by the
// differential matrix's incmark presets; these tests pin the mechanics.
//
//===----------------------------------------------------------------------===//

#include "vm/heap.h"

#include "support/interner.h"

#include <gtest/gtest.h>

using namespace mself;

namespace {

struct TestRoots : RootProvider {
  std::vector<Value> Roots;
  void traceRoots(GcVisitor &V) override {
    for (Value &R : Roots)
      V.visit(R);
  }
};

/// A heap running the incremental collector with a tiny old-space growth
/// threshold, so a handful of allocations arms a cycle.
struct IncHeap {
  Heap H;
  StringInterner In;
  TestRoots R;
  Map *M = nullptr;

  explicit IncHeap(bool Generational, size_t ThresholdBytes = 2048,
                   uint32_t BudgetMicros = 1000) {
    H.configureGc(Generational, 16u << 10, /*PromotionAge=*/0,
                  ThresholdBytes);
    H.configureIncrementalMark(true, BudgetMicros);
    H.addRootProvider(&R);
    M = H.newMap(ObjectKind::Plain, "t");
    M->addSlot(In.intern("x"), SlotKind::Data, Value(), In.intern("x:"));
  }
  ~IncHeap() { H.removeRootProvider(&R); }

  Object *rooted() {
    Object *O = H.allocPlain(M);
    R.Roots.push_back(Value::fromObject(O));
    return O;
  }

  /// Allocates garbage until the safepoint entry point opens a cycle.
  /// Batches between safepoints so that, under the generational
  /// configuration, the nursery overflows into the old space (garbage
  /// that merely dies young never grows the old space or arms a cycle).
  void armCycle() {
    for (int I = 0; I < 1000 && H.oldGcPhase() == Heap::OldGcPhase::Idle;
         ++I) {
      for (int J = 0; J < 1024; ++J)
        H.allocPlain(M);
      H.collectAtSafepoint();
    }
    ASSERT_EQ(H.oldGcPhase(), Heap::OldGcPhase::Marking);
  }

  /// Drives safepoints until the in-flight cycle completes. The pacing
  /// gate makes most calls no-ops, so this spins briefly in real time.
  void driveToIdle() {
    uint64_t Start = H.stats().MarkCycles;
    for (int I = 0; I < 20000000 && H.stats().MarkCycles == Start; ++I)
      H.collectAtSafepoint();
    ASSERT_EQ(H.oldGcPhase(), Heap::OldGcPhase::Idle);
  }
};

} // namespace

//===----------------------------------------------------------------------===//
// Phase machine and reclamation
//===----------------------------------------------------------------------===//

TEST(GcIncremental, CycleReclaimsSnapshotGarbageAndKeepsLive) {
  IncHeap G(/*Generational=*/false);
  Object *P = G.rooted();
  Object *C = G.H.allocPlain(G.M);
  P->setField(0, Value::fromObject(C)); // Live through P.
  G.armCycle();
  G.driveToIdle();
  // Everything allocated by armCycle was unreachable at the snapshot and
  // is gone; the rooted pair survived, with contents intact.
  EXPECT_EQ(G.H.objectCount(), 2u);
  EXPECT_EQ(G.R.Roots[0].asObject()->field(0).asObject(), C);
  const GcStats &S = G.H.stats();
  EXPECT_EQ(S.MarkCycles, 1u);
  EXPECT_GE(S.MarkIncrements, 1u);
  EXPECT_GE(S.SweepIncrements, 1u);
  // The incremental path never runs a stop-the-world full collection.
  EXPECT_EQ(S.FullCollections, 0u);
  // Every increment recorded a pause sample in the old-space histogram.
  EXPECT_EQ(S.FullPauses.Samples, S.MarkIncrements + S.SweepIncrements);
}

TEST(GcIncremental, SatbBarrierKeepsSnapshotReachableAlive) {
  IncHeap G(/*Generational=*/false);
  Object *P = G.rooted();
  Object *C = G.H.allocPlain(G.M);
  P->setField(0, Value::fromObject(C));
  G.armCycle();
  // The begin pause marked only the direct root referent (P); C is still
  // white. Deleting the only edge to it must grey it — snapshot-at-the-
  // beginning — so the cycle retains it as floating garbage.
  P->setField(0, Value::fromInt(0));
  G.driveToIdle();
  EXPECT_EQ(G.H.objectCount(), 2u); // P + floating C.
  EXPECT_GE(G.H.stats().SatbMarks, 1u);

  // The next cycle sees C unreachable at its snapshot and reclaims it.
  G.armCycle();
  G.driveToIdle();
  EXPECT_EQ(G.H.objectCount(), 1u);
  EXPECT_EQ(G.H.stats().MarkCycles, 2u);
}

TEST(GcIncremental, BirthsDuringMarkingAreAllocatedBlack) {
  IncHeap G(/*Generational=*/false);
  G.rooted();
  G.armCycle();
  // Born while marking, never rooted: allocate-black means this cycle may
  // not reclaim it (it postdates the snapshot).
  G.H.allocPlain(G.M);
  G.driveToIdle();
  EXPECT_EQ(G.H.objectCount(), 2u);
  // The following cycle reclaims it.
  G.armCycle();
  G.driveToIdle();
  EXPECT_EQ(G.H.objectCount(), 1u);
}

TEST(GcIncremental, BirthsDuringSweepingAreNeverSweptThisCycle) {
  IncHeap G(/*Generational=*/false);
  G.rooted();
  G.armCycle();
  for (int I = 0; I < 20000000 &&
                  G.H.oldGcPhase() != Heap::OldGcPhase::Sweeping;
       ++I)
    G.H.collectAtSafepoint();
  ASSERT_EQ(G.H.oldGcPhase(), Heap::OldGcPhase::Sweeping);
  // Born after the flip: lives on the fresh allocation list the detached
  // sweep never visits.
  G.H.allocPlain(G.M);
  G.driveToIdle();
  EXPECT_EQ(G.H.objectCount(), 2u);
}

TEST(GcIncremental, DirectCollectFinishesTheInFlightCycle) {
  IncHeap G(/*Generational=*/false);
  G.rooted();
  G.armCycle();
  // A direct full collection mid-cycle must finish the incremental cycle
  // first (clean mark state), then reclaim everything dead right now.
  G.H.collect();
  EXPECT_EQ(G.H.oldGcPhase(), Heap::OldGcPhase::Idle);
  EXPECT_EQ(G.H.objectCount(), 1u);
  EXPECT_EQ(G.H.stats().MarkCycles, 1u);
  EXPECT_EQ(G.H.stats().FullCollections, 1u);
}

//===----------------------------------------------------------------------===//
// Generational interaction
//===----------------------------------------------------------------------===//

TEST(GcIncremental, GenerationalCycleOpensWithPromoteAll) {
  IncHeap G(/*Generational=*/true);
  Object *Y = G.rooted();
  ASSERT_TRUE(Heap::isYoung(Y));
  G.armCycle();
  // The snapshot may contain only immovable objects: the begin pause
  // evacuated the nursery, force-promoting the rooted survivor.
  EXPECT_FALSE(Heap::isYoung(G.R.Roots[0].asObject()));
  G.driveToIdle();
  EXPECT_EQ(G.H.objectCount(), 1u);
}

TEST(GcIncremental, MidCycleYoungStoresKeepReferentsAlive) {
  IncHeap G(/*Generational=*/true);
  Object *P = G.rooted();
  Object *C = G.H.allocPlain(G.M);
  P->setField(0, Value::fromObject(C));
  G.armCycle(); // Promote-all: P and C are old now; P marked, C white.
  P = G.R.Roots[0].asObject();
  C = P->field(0).asObject();
  ASSERT_FALSE(Heap::isYoung(C));

  // Mid-cycle mutator traffic: a young object becomes the only holder of
  // the white old object's reference (the old edge is deleted — SATB —
  // and the young holder is traced through at the termination re-scan).
  Object *Y = G.rooted();
  ASSERT_TRUE(Heap::isYoung(Y));
  Y->setField(0, Value::fromObject(C));
  P->setField(0, Value::fromInt(0));

  G.driveToIdle();
  // P, C, and Y (promoted or still young) all survive, and the reference
  // chain through the young holder is intact.
  EXPECT_EQ(G.H.objectCount(), 3u);
  EXPECT_EQ(G.R.Roots[1].asObject()->field(0).asObject(), C);
}

TEST(GcIncremental, FlipPurgesDeadRememberedSetEntries) {
  IncHeap G(/*Generational=*/true);
  G.rooted(); // Baseline survivor.
  // Build an *old* object and then drop its root: unreachable, but the
  // mutator still holds a raw pointer (legal until the next safepoint).
  Object *Dead = G.rooted();
  G.H.scavenge(); // Promotion age 0: one scavenge tenures it.
  Dead = G.R.Roots[1].asObject();
  ASSERT_FALSE(Heap::isYoung(Dead));
  G.R.Roots.pop_back();

  G.armCycle(); // Marking; Dead is white (unreachable at the snapshot).
  // Mid-cycle the dead old object gains a young reference: it joins the
  // remembered set — and the sweep is about to free it, so the flip must
  // purge the entry before it dangles.
  Object *Y = G.H.allocPlain(G.M);
  ASSERT_TRUE(Heap::isYoung(Y));
  Dead->setField(0, Value::fromObject(Y));
  EXPECT_EQ(G.H.rememberedSetSize(), 1u);
  G.driveToIdle(); // Flip purges the entry; the sweep reclaims Dead.
  EXPECT_EQ(G.H.rememberedSetSize(), 0u);
  // A scavenge after the cycle must not trace through the freed object.
  G.H.scavenge();
  EXPECT_EQ(G.H.objectCount(), 1u);
}

//===----------------------------------------------------------------------===//
// Pause histogram
//===----------------------------------------------------------------------===//

TEST(GcPauseHistogram, RecordsSamplesTotalsAndMax) {
  PauseHistogram H;
  EXPECT_EQ(H.percentileSeconds(0.5), 0.0);
  H.record(10e-6);
  H.record(100e-6);
  H.record(1e-3);
  EXPECT_EQ(H.Samples, 3u);
  EXPECT_DOUBLE_EQ(H.MaxSeconds, 1e-3);
  EXPECT_NEAR(H.TotalSeconds, 10e-6 + 100e-6 + 1e-3, 1e-12);
}

TEST(GcPauseHistogram, PercentilesAreMonotoneAndBoundedByMax) {
  PauseHistogram H;
  for (int I = 0; I < 90; ++I)
    H.record(8e-6); // p50/p90 land here.
  for (int I = 0; I < 10; ++I)
    H.record(900e-6); // The slow tail.
  double P50 = H.percentileSeconds(0.50);
  double P95 = H.percentileSeconds(0.95);
  double P99 = H.percentileSeconds(0.99);
  EXPECT_LE(P50, P95);
  EXPECT_LE(P95, P99);
  EXPECT_LE(P99, H.MaxSeconds + 1e-12);
  // The estimate is a bucket upper edge: conservative but in the right
  // bucket — p50 must see the fast population, p99 the tail.
  EXPECT_LT(P50, 100e-6);
  EXPECT_GT(P99, 500e-6);
}

TEST(GcPauseHistogram, ExtremesLandInEdgeBuckets) {
  PauseHistogram H;
  H.record(0.0);   // Bucket 0.
  H.record(100.0); // Far past the top bucket's lower edge: open-ended.
  EXPECT_EQ(H.Counts[0], 1u);
  EXPECT_EQ(H.Counts[PauseHistogram::kBuckets - 1], 1u);
  // The top-bucket estimate clamps to the observed max, not the bucket
  // edge.
  EXPECT_DOUBLE_EQ(H.percentileSeconds(1.0), 100.0);
}

TEST(GcPauseHistogram, MergeAccumulates) {
  PauseHistogram A, B;
  A.record(10e-6);
  B.record(2e-3);
  B.record(4e-6);
  A.merge(B);
  EXPECT_EQ(A.Samples, 3u);
  EXPECT_DOUBLE_EQ(A.MaxSeconds, 2e-3);
  EXPECT_NEAR(A.TotalSeconds, 10e-6 + 2e-3 + 4e-6, 1e-12);
  uint64_t Sum = 0;
  for (int I = 0; I < PauseHistogram::kBuckets; ++I)
    Sum += A.Counts[I];
  EXPECT_EQ(Sum, 3u);
}
