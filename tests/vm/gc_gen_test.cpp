//===-- tests/vm/gc_gen_test.cpp - Generational collector mechanics --------===//
//
// The generational machinery itself: copying scavenges, age-based
// promotion, the old-to-young write barrier and remembered set, nursery
// overflow, and full-collection evacuation. Collector-independent
// reachability semantics live in heap_test.cpp.
//
//===----------------------------------------------------------------------===//

#include "vm/heap.h"

#include "support/interner.h"

#include <gtest/gtest.h>

#include <mutex>

using namespace mself;

namespace {

struct TestRoots : RootProvider {
  std::vector<Value> Roots;
  void traceRoots(GcVisitor &V) override {
    for (Value &R : Roots)
      V.visit(R);
  }
};

/// A heap with a registered root list and a map with one data slot, under
/// an explicit generational configuration.
struct GenHeap {
  Heap H;
  StringInterner In;
  TestRoots R;
  Map *M = nullptr;

  GenHeap(size_t NurseryBytes, int PromotionAge) {
    H.configureGc(true, NurseryBytes, PromotionAge);
    H.addRootProvider(&R);
    M = H.newMap(ObjectKind::Plain, "t");
    M->addSlot(In.intern("x"), SlotKind::Data, Value(), In.intern("x:"));
  }
  ~GenHeap() { H.removeRootProvider(&R); }

  Object *rooted() {
    Object *O = H.allocPlain(M);
    R.Roots.push_back(Value::fromObject(O));
    return O;
  }
};

} // namespace

TEST(GcGen, ScavengeReclaimsDeadYoungObjects) {
  GenHeap G(64u << 10, 2);
  G.rooted();
  for (int I = 0; I < 50; ++I)
    G.H.allocPlain(G.M); // garbage
  EXPECT_EQ(G.H.objectCount(), 51u);
  G.H.scavenge();
  EXPECT_EQ(G.H.objectCount(), 1u);
  EXPECT_EQ(G.H.stats().Scavenges, 1u);
  EXPECT_EQ(G.H.stats().FullCollections, 0u);
}

TEST(GcGen, ScavengeMovesSurvivorsAndUpdatesRoots) {
  GenHeap G(64u << 10, 2);
  Object *O = G.rooted();
  O->setField(0, Value::fromInt(77));
  Object *Before = O;
  G.H.scavenge();
  // The semispaces flipped: the survivor was copied and the root rewritten
  // to its new address, with contents intact.
  Object *After = G.R.Roots[0].asObject();
  EXPECT_NE(After, Before);
  EXPECT_TRUE(Heap::isYoung(After));
  ASSERT_TRUE(After->field(0).isInt());
  EXPECT_EQ(After->field(0).asInt(), 77);
  EXPECT_EQ(G.H.stats().ObjectsCopied, 1u);
}

TEST(GcGen, PromotionAgeZeroTenuresOnFirstScavenge) {
  GenHeap G(64u << 10, 0);
  G.rooted();
  G.H.scavenge();
  Object *O = G.R.Roots[0].asObject();
  EXPECT_FALSE(Heap::isYoung(O));
  EXPECT_EQ(G.H.stats().ObjectsPromoted, 1u);
  EXPECT_EQ(G.H.stats().ObjectsCopied, 0u);
}

TEST(GcGen, PromotionAgeTwoNeedsTwoScavenges) {
  GenHeap G(64u << 10, 2);
  G.rooted();
  G.H.scavenge();
  EXPECT_TRUE(Heap::isYoung(G.R.Roots[0].asObject()));
  EXPECT_EQ(G.H.stats().ObjectsPromoted, 0u);
  G.H.scavenge();
  EXPECT_FALSE(Heap::isYoung(G.R.Roots[0].asObject()));
  EXPECT_EQ(G.H.stats().ObjectsPromoted, 1u);
  // Once old, further scavenges leave it alone.
  G.H.scavenge();
  EXPECT_EQ(G.H.objectCount(), 1u);
  EXPECT_EQ(G.H.stats().ObjectsPromoted, 1u);
}

TEST(GcGen, WriteBarrierKeepsUnrootedChildAliveThroughOldParent) {
  GenHeap G(64u << 10, 2);
  G.rooted();
  G.H.scavenge();
  G.H.scavenge(); // Parent is now old.
  Object *Parent = G.R.Roots[0].asObject();
  ASSERT_FALSE(Heap::isYoung(Parent));

  Object *Child = G.H.allocPlain(G.M);
  Child->setField(0, Value::fromInt(5));
  Parent->setField(0, Value::fromObject(Child)); // old <- young: barrier.
  EXPECT_EQ(G.H.stats().BarrierHits, 1u);
  EXPECT_EQ(G.H.rememberedSetSize(), 1u);

  // The child's only path from the roots is through the old parent: the
  // remembered set must root it, and the parent's field must be updated to
  // the child's new location.
  G.H.scavenge();
  EXPECT_EQ(G.H.objectCount(), 2u);
  ASSERT_TRUE(Parent->field(0).isObject());
  Object *MovedChild = Parent->field(0).asObject();
  EXPECT_TRUE(Heap::isYoung(MovedChild));
  EXPECT_EQ(MovedChild->field(0).asInt(), 5);
  // Still young, so the parent stays remembered.
  EXPECT_EQ(G.H.rememberedSetSize(), 1u);
}

TEST(GcGen, WriteBarrierDeduplicatesRememberedSetEntries) {
  GenHeap G(64u << 10, 0);
  G.rooted();
  G.H.scavenge(); // Parent promoted (age 0).
  Object *Parent = G.R.Roots[0].asObject();

  Object *A = G.H.allocPlain(G.M);
  Object *B = G.H.allocPlain(G.M);
  Parent->setField(0, Value::fromObject(A));
  Parent->setField(0, Value::fromObject(B));
  // Two old-to-young stores into one object: one slow-path hit, one entry.
  EXPECT_EQ(G.H.stats().BarrierHits, 1u);
  EXPECT_EQ(G.H.rememberedSetSize(), 1u);
}

TEST(GcGen, NoBarrierForYoungHoldersOrOldValues) {
  GenHeap G(64u << 10, 0);
  Object *YoungParent = G.rooted();
  Object *YoungChild = G.H.allocPlain(G.M);
  YoungParent->setField(0, Value::fromObject(YoungChild));
  EXPECT_EQ(G.H.stats().BarrierHits, 0u); // young holder: no barrier.

  G.H.scavenge(); // Both promoted (age 0).
  Object *OldParent = G.R.Roots[0].asObject();
  Object *OldChild = OldParent->field(0).asObject();
  OldParent->setField(0, Value::fromObject(OldChild));
  OldParent->setField(0, Value::fromInt(3));
  EXPECT_EQ(G.H.stats().BarrierHits, 0u); // old->old and old->int: none.
  EXPECT_EQ(G.H.rememberedSetSize(), 0u);
}

TEST(GcGen, RememberedSetPrunedWhenChildPromotes) {
  GenHeap G(64u << 10, 0);
  G.rooted();
  G.H.scavenge();
  Object *Parent = G.R.Roots[0].asObject();
  Object *Child = G.H.allocPlain(G.M);
  Parent->setField(0, Value::fromObject(Child));
  EXPECT_EQ(G.H.rememberedSetSize(), 1u);

  // Age 0: the child promotes on this scavenge, so the parent no longer
  // holds any young reference and must leave the remembered set.
  G.H.scavenge();
  EXPECT_EQ(G.H.rememberedSetSize(), 0u);
  EXPECT_FALSE(Heap::isYoung(Parent->field(0).asObject()));
  // A later store of another young object must re-remember the parent.
  Object *Child2 = G.H.allocPlain(G.M);
  Parent->setField(0, Value::fromObject(Child2));
  EXPECT_EQ(G.H.rememberedSetSize(), 1u);
  EXPECT_EQ(G.H.stats().BarrierHits, 2u);
}

TEST(GcGen, ArrayStoresHitTheBarrierToo) {
  GenHeap G(64u << 10, 0);
  Map *AM = G.H.newMap(ObjectKind::Array, "arr");
  ArrayObj *Arr = G.H.allocArray(AM, 4, Value());
  G.R.Roots.push_back(Value::fromObject(Arr));
  G.H.scavenge(); // Array promoted.
  auto *OldArr = static_cast<ArrayObj *>(G.R.Roots.back().asObject());
  ASSERT_FALSE(Heap::isYoung(OldArr));

  Object *Child = G.H.allocPlain(G.M);
  OldArr->atPut(2, Value::fromObject(Child));
  EXPECT_EQ(G.H.rememberedSetSize(), 1u);
  G.H.scavenge();
  EXPECT_FALSE(Heap::isYoung(OldArr->at(2).asObject()));
}

TEST(GcGen, NurseryOverflowFallsBackToOldSpace) {
  // 4 KiB nursery, no collections run: allocation must never fail — the
  // overflow path sends shells straight to the old space between
  // safepoints.
  GenHeap G(4u << 10, 2);
  for (int I = 0; I < 300; ++I)
    G.rooted();
  EXPECT_EQ(G.H.objectCount(), 300u);
  const GcStats &S = G.H.stats();
  EXPECT_GT(S.NurseryAllocs, 0u);
  EXPECT_GT(S.OverflowAllocs, 0u);
  EXPECT_EQ(S.NurseryAllocs + S.OldAllocs, 300u);
  // Everything stays reachable through a full collection.
  G.H.collect();
  EXPECT_EQ(G.H.objectCount(), 300u);
}

TEST(GcGen, FullCollectionEvacuatesTheNursery) {
  GenHeap G(64u << 10, 2);
  Object *O = G.rooted();
  O->setField(0, Value::fromInt(9));
  for (int I = 0; I < 20; ++I)
    G.H.allocPlain(G.M); // garbage
  G.H.collect();
  // Survivors were tenured regardless of age; the nursery is empty.
  EXPECT_EQ(G.H.objectCount(), 1u);
  EXPECT_EQ(G.H.nurseryUsedBytes(), 0u);
  Object *Tenured = G.R.Roots[0].asObject();
  EXPECT_FALSE(Heap::isYoung(Tenured));
  EXPECT_EQ(Tenured->field(0).asInt(), 9);
  EXPECT_EQ(G.H.stats().FullCollections, 1u);
}

TEST(GcGen, StatsTrackPausesAndSurvival) {
  GenHeap G(64u << 10, 2);
  G.rooted();
  for (int I = 0; I < 40; ++I)
    G.H.allocPlain(G.M);
  G.H.scavenge();
  G.H.collect();
  const GcStats &S = G.H.stats();
  EXPECT_EQ(S.Scavenges, 1u);
  EXPECT_EQ(S.FullCollections, 1u);
  // One histogram sample per collection, split by kind.
  EXPECT_EQ(S.ScavengePauses.Samples + S.FullPauses.Samples,
            G.H.collectionCount());
  EXPECT_EQ(S.ScavengePauses.Samples, S.Scavenges);
  EXPECT_EQ(S.FullPauses.Samples, S.FullCollections);
  EXPECT_GE(S.maxPauseSeconds(), 0.0);
  EXPECT_GE(S.totalPauseSeconds(), S.maxPauseSeconds());
  EXPECT_GT(S.ScannedScavengeBytes, 0u);
  EXPECT_GT(S.survivalRate(), 0.0);
  EXPECT_LT(S.survivalRate(), 1.0); // 40 of 41 objects were garbage.
}

TEST(GcGen, GcGateDefersSafepointCollections) {
  // The GC gate is the background compile worker's exclusion: held, a due
  // safepoint collection must be deferred and counted, not run — and it
  // must then actually run at the next safepoint once the gate is free.
  GenHeap G(4u << 10, 2);
  std::mutex Gate;
  G.H.setGcGate(&Gate);
  G.rooted();
  while (!G.H.shouldCollect())
    G.H.allocPlain(G.M);
  uint64_t Before = G.H.stats().Scavenges;

  Gate.lock(); // A compile job is in flight.
  G.H.collectAtSafepoint();
  Gate.unlock();
  EXPECT_EQ(G.H.stats().GcDeferrals, 1u);
  EXPECT_EQ(G.H.stats().Scavenges, Before); // Nothing collected.
  EXPECT_TRUE(G.H.shouldCollect());         // Still pending.

  G.H.collectAtSafepoint(); // Gate free: the deferred collection runs.
  EXPECT_EQ(G.H.stats().GcDeferrals, 1u);
  EXPECT_EQ(G.H.stats().Scavenges, Before + 1);
  G.H.setGcGate(nullptr);
}

TEST(GcGen, MarkSweepModeNeverScavenges) {
  Heap H;
  H.configureGc(false);
  TestRoots R;
  H.addRootProvider(&R);
  Map *M = H.newMap(ObjectKind::Plain, "t");
  Object *O = H.allocPlain(M);
  R.Roots.push_back(Value::fromObject(O));
  H.scavenge(); // No-op without a nursery.
  EXPECT_EQ(H.collectionCount(), 0u);
  EXPECT_EQ(R.Roots[0].asObject(), O); // Nothing moved.
  EXPECT_FALSE(Heap::isYoung(O));
  EXPECT_EQ(H.stats().NurseryAllocs, 0u);
  EXPECT_EQ(H.stats().OldAllocs, 1u);
  H.removeRootProvider(&R);
}
