//===-- tests/vm/heap_test.cpp - Reachability GC unit tests ----------------===//
//
// Collector-independent reachability semantics, run under both the
// generational (default) and mark-sweep-only configurations via the
// Collectors suite parameter. Generational-specific mechanics (scavenging,
// promotion, barriers) live in gc_gen_test.cpp.
//
//===----------------------------------------------------------------------===//

#include "vm/heap.h"

#include "support/interner.h"

#include <gtest/gtest.h>

using namespace mself;

namespace {

/// Root provider exposing an explicit list of roots to the collector. Roots
/// are visited by reference: a moving collection updates them in place.
struct TestRoots : RootProvider {
  std::vector<Value> Roots;
  void traceRoots(GcVisitor &V) override {
    for (Value &R : Roots)
      V.visit(R);
  }
};

} // namespace

TEST(Heap, UnreachedObjectsAreCollected) {
  Heap H;
  Map *M = H.newMap(ObjectKind::Plain, "t");
  TestRoots R;
  H.addRootProvider(&R);
  for (int I = 0; I < 100; ++I)
    H.allocPlain(M);
  EXPECT_EQ(H.objectCount(), 100u);
  H.collect();
  EXPECT_EQ(H.objectCount(), 0u);
  H.removeRootProvider(&R);
}

TEST(Heap, RootedObjectsSurvive) {
  Heap H;
  Map *M = H.newMap(ObjectKind::Plain, "t");
  TestRoots R;
  H.addRootProvider(&R);
  Object *Live = H.allocPlain(M);
  R.Roots.push_back(Value::fromObject(Live));
  H.allocPlain(M); // garbage
  H.collect();
  EXPECT_EQ(H.objectCount(), 1u);
  H.removeRootProvider(&R);
}

TEST(Heap, ReachabilityThroughFieldsAndArrays) {
  Heap H;
  StringInterner In;
  Map *M = H.newMap(ObjectKind::Plain, "t");
  M->addSlot(In.intern("x"), SlotKind::Data, Value(), In.intern("x:"));
  Map *AM = H.newMap(ObjectKind::Array, "arr");
  TestRoots R;
  H.addRootProvider(&R);

  Object *Inner = H.allocPlain(H.newMap(ObjectKind::Plain, "inner"));
  ArrayObj *Arr = H.allocArray(AM, 3, Value());
  Arr->atPut(1, Value::fromObject(Inner));
  Object *Outer = H.allocPlain(M);
  Outer->setField(0, Value::fromObject(Arr));
  R.Roots.push_back(Value::fromObject(Outer));

  H.allocPlain(M); // garbage
  H.collect();
  EXPECT_EQ(H.objectCount(), 3u);
  H.removeRootProvider(&R);
}

TEST(Heap, MapConstantsAreRoots) {
  Heap H;
  StringInterner In;
  Map *M = H.newMap(ObjectKind::Plain, "t");
  Object *Shared = H.allocPlain(H.newMap(ObjectKind::Plain, "shared"));
  M->addSlot(In.intern("k"), SlotKind::Constant, Value::fromObject(Shared));
  H.collect(); // No external roots at all.
  EXPECT_EQ(H.objectCount(), 1u);
}

TEST(Heap, CyclesAreCollected) {
  Heap H;
  StringInterner In;
  Map *M = H.newMap(ObjectKind::Plain, "t");
  M->addSlot(In.intern("x"), SlotKind::Data, Value(), In.intern("x:"));
  TestRoots R;
  H.addRootProvider(&R);
  Object *A = H.allocPlain(M);
  Object *B = H.allocPlain(M);
  A->setField(0, Value::fromObject(B));
  B->setField(0, Value::fromObject(A));
  H.collect();
  EXPECT_EQ(H.objectCount(), 0u);
  H.removeRootProvider(&R);
}

TEST(Heap, CollectionCountAndThreshold) {
  Heap H;
  // Mark-sweep mode: every allocation lands in the old space, so the
  // growth threshold alone decides when to collect.
  H.configureGc(false);
  H.setGcThresholdBytes(1);
  Map *M = H.newMap(ObjectKind::Plain, "t");
  H.allocPlain(M);
  EXPECT_TRUE(H.shouldCollect());
  H.collect();
  EXPECT_FALSE(H.shouldCollect());
  EXPECT_EQ(H.collectionCount(), 1u);
}

TEST(Heap, PayloadBytesCountTowardThreshold) {
  Heap H;
  H.configureGc(false);
  // Well above any shell size, well below the payload of the array below:
  // the old accounting (shell bytes only) would not trigger a collection.
  H.setGcThresholdBytes(4096);
  Map *AM = H.newMap(ObjectKind::Array, "arr");
  H.allocArray(AM, 1024, Value()); // 1024 * 8 payload bytes.
  EXPECT_TRUE(H.shouldCollect());

  Heap H2;
  H2.configureGc(false);
  H2.setGcThresholdBytes(4096);
  Map *SM = H2.newMap(ObjectKind::String, "str");
  H2.allocString(SM, std::string(8192, 'x'));
  EXPECT_TRUE(H2.shouldCollect());

  // Field payloads count too: 1000 data slots = 8000 bytes of fields.
  Heap H3;
  H3.configureGc(false);
  H3.setGcThresholdBytes(4096);
  StringInterner In;
  Map *PM = H3.newMap(ObjectKind::Plain, "wide");
  for (int I = 0; I < 1000; ++I)
    PM->addSlot(In.intern("f" + std::to_string(I)), SlotKind::Data);
  H3.allocPlain(PM);
  EXPECT_TRUE(H3.shouldCollect());
}

// The reachability semantics above must be collector-independent: repeat
// the core scenarios under the generational collector with a nursery small
// enough that collect() exercises evacuation + promotion.
TEST(Heap, ReachabilityIdenticalUnderGenerationalCollector) {
  Heap H;
  H.configureGc(true, /*NurseryBytes=*/4096, /*PromotionAge=*/1);
  StringInterner In;
  Map *M = H.newMap(ObjectKind::Plain, "t");
  M->addSlot(In.intern("x"), SlotKind::Data, Value(), In.intern("x:"));
  Map *AM = H.newMap(ObjectKind::Array, "arr");
  TestRoots R;
  H.addRootProvider(&R);

  Object *Inner = H.allocPlain(H.newMap(ObjectKind::Plain, "inner"));
  ArrayObj *Arr = H.allocArray(AM, 3, Value());
  Arr->atPut(1, Value::fromObject(Inner));
  Object *Outer = H.allocPlain(M);
  Outer->setField(0, Value::fromObject(Arr));
  R.Roots.push_back(Value::fromObject(Outer));
  for (int I = 0; I < 64; ++I)
    H.allocPlain(M); // garbage

  H.collect();
  EXPECT_EQ(H.objectCount(), 3u);
  // The root was updated to the object's new location and the structure
  // beneath it is intact.
  Object *MovedOuter = R.Roots[0].asObject();
  ASSERT_TRUE(MovedOuter->field(0).isObject());
  auto *MovedArr = static_cast<ArrayObj *>(MovedOuter->field(0).asObject());
  EXPECT_EQ(MovedArr->size(), 3);
  EXPECT_TRUE(MovedArr->at(1).isObject());
  H.removeRootProvider(&R);
}
