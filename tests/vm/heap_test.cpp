//===-- tests/vm/heap_test.cpp - Mark-sweep GC unit tests ------------------===//

#include "vm/heap.h"

#include "support/interner.h"

#include <gtest/gtest.h>

using namespace mself;

namespace {

/// Root provider exposing an explicit list of roots to the collector.
struct TestRoots : RootProvider {
  std::vector<Value> Roots;
  void traceRoots(GcVisitor &V) override {
    for (Value R : Roots)
      V.visit(R);
  }
};

} // namespace

TEST(Heap, UnreachedObjectsAreCollected) {
  Heap H;
  Map *M = H.newMap(ObjectKind::Plain, "t");
  TestRoots R;
  H.addRootProvider(&R);
  for (int I = 0; I < 100; ++I)
    H.allocPlain(M);
  EXPECT_EQ(H.objectCount(), 100u);
  H.collect();
  EXPECT_EQ(H.objectCount(), 0u);
  H.removeRootProvider(&R);
}

TEST(Heap, RootedObjectsSurvive) {
  Heap H;
  Map *M = H.newMap(ObjectKind::Plain, "t");
  TestRoots R;
  H.addRootProvider(&R);
  Object *Live = H.allocPlain(M);
  R.Roots.push_back(Value::fromObject(Live));
  H.allocPlain(M); // garbage
  H.collect();
  EXPECT_EQ(H.objectCount(), 1u);
  H.removeRootProvider(&R);
}

TEST(Heap, ReachabilityThroughFieldsAndArrays) {
  Heap H;
  StringInterner In;
  Map *M = H.newMap(ObjectKind::Plain, "t");
  M->addSlot(In.intern("x"), SlotKind::Data, Value(), In.intern("x:"));
  Map *AM = H.newMap(ObjectKind::Array, "arr");
  TestRoots R;
  H.addRootProvider(&R);

  Object *Inner = H.allocPlain(H.newMap(ObjectKind::Plain, "inner"));
  ArrayObj *Arr = H.allocArray(AM, 3, Value());
  Arr->atPut(1, Value::fromObject(Inner));
  Object *Outer = H.allocPlain(M);
  Outer->setField(0, Value::fromObject(Arr));
  R.Roots.push_back(Value::fromObject(Outer));

  H.allocPlain(M); // garbage
  H.collect();
  EXPECT_EQ(H.objectCount(), 3u);
  H.removeRootProvider(&R);
}

TEST(Heap, MapConstantsAreRoots) {
  Heap H;
  StringInterner In;
  Map *M = H.newMap(ObjectKind::Plain, "t");
  Object *Shared = H.allocPlain(H.newMap(ObjectKind::Plain, "shared"));
  M->addSlot(In.intern("k"), SlotKind::Constant, Value::fromObject(Shared));
  H.collect(); // No external roots at all.
  EXPECT_EQ(H.objectCount(), 1u);
}

TEST(Heap, CyclesAreCollected) {
  Heap H;
  StringInterner In;
  Map *M = H.newMap(ObjectKind::Plain, "t");
  M->addSlot(In.intern("x"), SlotKind::Data, Value(), In.intern("x:"));
  TestRoots R;
  H.addRootProvider(&R);
  Object *A = H.allocPlain(M);
  Object *B = H.allocPlain(M);
  A->setField(0, Value::fromObject(B));
  B->setField(0, Value::fromObject(A));
  H.collect();
  EXPECT_EQ(H.objectCount(), 0u);
  H.removeRootProvider(&R);
}

TEST(Heap, CollectionCountAndThreshold) {
  Heap H;
  H.setGcThresholdBytes(1);
  Map *M = H.newMap(ObjectKind::Plain, "t");
  H.allocPlain(M);
  EXPECT_TRUE(H.shouldCollect());
  H.collect();
  EXPECT_FALSE(H.shouldCollect());
  EXPECT_EQ(H.collectionCount(), 1u);
}
