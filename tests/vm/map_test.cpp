//===-- tests/vm/map_test.cpp - Map (hidden class) unit tests --------------===//

#include "vm/map.h"

#include "support/interner.h"
#include "vm/heap.h"
#include "vm/object.h"

#include <gtest/gtest.h>

using namespace mself;

namespace {

class MapTest : public ::testing::Test {
protected:
  StringInterner In;
  Heap H;
};

} // namespace

TEST_F(MapTest, ConstantSlotLookup) {
  Map *M = H.newMap(ObjectKind::Plain, "t");
  const std::string *N = In.intern("answer");
  M->addSlot(N, SlotKind::Constant, Value::fromInt(42));
  const SlotDesc *S = M->findSlot(N);
  ASSERT_NE(S, nullptr);
  EXPECT_EQ(S->Kind, SlotKind::Constant);
  EXPECT_EQ(S->Constant.asInt(), 42);
  EXPECT_EQ(M->fieldCount(), 0);
}

TEST_F(MapTest, DataSlotGetsFieldIndexAndSetter) {
  Map *M = H.newMap(ObjectKind::Plain, "t");
  const std::string *X = In.intern("x");
  const std::string *XSet = In.intern("x:");
  const std::string *Y = In.intern("y");
  const std::string *YSet = In.intern("y:");
  M->addSlot(X, SlotKind::Data, Value::fromInt(0), XSet);
  M->addSlot(Y, SlotKind::Data, Value::fromInt(0), YSet);
  EXPECT_EQ(M->fieldCount(), 2);
  EXPECT_EQ(M->findSlot(X)->FieldIndex, 0);
  EXPECT_EQ(M->findSlot(Y)->FieldIndex, 1);
  const SlotDesc *A = M->findAssignSlot(YSet);
  ASSERT_NE(A, nullptr);
  EXPECT_EQ(A->FieldIndex, 1);
}

TEST_F(MapTest, MissingSlotIsNull) {
  Map *M = H.newMap(ObjectKind::Plain, "t");
  EXPECT_EQ(M->findSlot(In.intern("nope")), nullptr);
  EXPECT_EQ(M->findAssignSlot(In.intern("nope:")), nullptr);
}

TEST_F(MapTest, ParentSlotsTracked) {
  Map *M = H.newMap(ObjectKind::Plain, "t");
  M->addSlot(In.intern("a"), SlotKind::Constant, Value::fromInt(1));
  int P1 = M->addSlot(In.intern("p1"), SlotKind::Parent);
  int P2 = M->addSlot(In.intern("p2"), SlotKind::Parent);
  ASSERT_EQ(M->parentSlotIndices().size(), 2u);
  EXPECT_EQ(M->parentSlotIndices()[0], P1);
  EXPECT_EQ(M->parentSlotIndices()[1], P2);
}

TEST_F(MapTest, LateBoundParentConstant) {
  Map *M = H.newMap(ObjectKind::Plain, "t");
  int P = M->addSlot(In.intern("parent"), SlotKind::Parent);
  EXPECT_TRUE(M->slots()[size_t(P)].Constant.isEmpty());
  Object *O = H.allocPlain(H.newMap(ObjectKind::Plain, "p"));
  M->setSlotConstant(P, Value::fromObject(O));
  EXPECT_EQ(M->slots()[size_t(P)].Constant.asObject(), O);
}

TEST_F(MapTest, DataSlotInitialValueCopiedToObjects) {
  Map *M = H.newMap(ObjectKind::Plain, "t");
  M->addSlot(In.intern("x"), SlotKind::Data, Value::fromInt(9),
             In.intern("x:"));
  Object *O = H.allocPlain(M);
  EXPECT_EQ(O->field(0).asInt(), 9);
}
