//===-- tests/interp/bgcompile_test.cpp - Background compilation tests ----===//
//
// Race-surface tests for the off-thread tier-up pipeline: promotion results
// install only at mutator safepoints, shape mutations cancel both in-flight
// and finished-but-uninstalled jobs (stale code is never installed), queue
// saturation falls back to the synchronous compiler, and shutdown drains
// cleanly with work still queued.
//
// The deterministic lever is CompileQueue::setFirstWalkHook: it runs on the
// worker thread right after the job's first compile-time lookup walk, so a
// test can park the worker at a known mid-compile point, mutate shapes from
// the mutator thread, and then let the compile finish against a world that
// changed under it.
//
// Every test builds its VM with BackgroundCompile set explicitly, but the
// driver folds MINISELF_BG_COMPILE into every policy (that is how the
// check-tsan suite flips the whole tier-1 set to async). A hostile
// environment can therefore force the queue off; tests that need it skip
// instead of failing.
//
//===----------------------------------------------------------------------===//

#include "driver/vm.h"
#include "interp/compile_queue.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

using namespace mself;

namespace {

Policy bgPolicy(int Threshold = 3) {
  Policy P = Policy::newSelf();
  P.TieredCompilation = true;
  P.TierUpThreshold = Threshold;
  P.BackgroundCompile = true;
  return P;
}

/// The hot method resolves `base` through the lobby, so (a) its optimized
/// compile's dependency set provably contains the lobby map and (b) the
/// compile's first lookup walk visits the lobby — the two facts the
/// cancellation tests pivot on. Defining any new lobby slot afterwards is
/// the canonical shape mutation.
const char *kWorld =
    "base = ( 2 ). "
    "hot: n = ( | t <- 0. i <- 0 | [ i < n ] whileTrue: "
    "[ i: i + 1. t: t + base + (i % 3) ]. t )";

int64_t hotExpected(int64_t N) {
  int64_t T = 0;
  for (int64_t I = 1; I <= N; ++I)
    T += 2 + I % 3;
  return T;
}

/// Spin until \p Flag turns true or ~5 seconds pass. Returns the flag.
bool waitFor(const std::atomic<bool> &Flag) {
  for (int I = 0; I < 5000 && !Flag.load(); ++I)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  return Flag.load();
}

} // namespace

// The baseline behavior: a hot method's promotion runs off-thread and the
// result is swapped in at a safepoint, with the mutator never observing a
// wrong answer before, during, or after the install.
TEST(BgCompile, InstallsAtSafepointWithCorrectResults) {
  VirtualMachine VM(bgPolicy());
  if (!VM.backgroundQueue())
    GTEST_SKIP() << "background compilation disabled by environment";
  std::string Err;
  int64_t Out = 0;
  ASSERT_TRUE(VM.load(kWorld, Err)) << Err;
  for (int I = 0; I < 10; ++I) {
    ASSERT_TRUE(VM.evalInt("hot: 40", Out, Err)) << "call " << I << ": " << Err;
    EXPECT_EQ(Out, hotExpected(40)) << "call " << I;
  }
  VM.settleBackgroundCompiles();
  ASSERT_TRUE(VM.evalInt("hot: 40", Out, Err)) << Err;
  EXPECT_EQ(Out, hotExpected(40));

  TierStats S = VM.telemetry().Tier;
  EXPECT_GE(S.Promotions, 1u);
  EXPECT_EQ(S.Swaps, S.Promotions);
  EXPECT_GE(S.BackgroundEnqueued, 1u);
  EXPECT_GE(S.BackgroundInstalled, 1u);
  // Every enqueued job is accounted for once it leaves the pipeline.
  EXPECT_LE(S.BackgroundInstalled + S.BackgroundCancelled,
            S.BackgroundEnqueued);
}

// No stale install, finished-job edition: a result that was compiled before
// a shape mutation but not yet installed must be discarded at the next
// install poll — and the promotion must self-heal (the function re-enqueues
// and eventually runs optimized code compiled against the new shape).
TEST(BgCompile, DoneJobDiscardedAfterShapeMutation) {
  VirtualMachine VM(bgPolicy());
  if (!VM.backgroundQueue())
    GTEST_SKIP() << "background compilation disabled by environment";
  CompileQueue *Q = VM.backgroundQueue();

  // Park the worker mid-compile until the triggering eval has returned, so
  // the finished result lands in the done list with no safepoint left to
  // install it.
  std::atomic<bool> Release{false};
  Q->setFirstWalkHook([&Release] { waitFor(Release); });

  std::string Err;
  int64_t Out = 0;
  ASSERT_TRUE(VM.load(kWorld, Err)) << Err;
  for (int I = 0; I < 4; ++I) {
    ASSERT_TRUE(VM.evalInt("hot: 40", Out, Err)) << Err;
    EXPECT_EQ(Out, hotExpected(40));
  }
  TierStats Before = VM.telemetry().Tier;
  ASSERT_GE(Before.BackgroundEnqueued, 1u);
  EXPECT_EQ(Before.BackgroundInstalled, 0u);

  Release = true;
  Q->waitIdle(); // Compile finishes; the result now awaits install.

  // Mutating the lobby — which the result's dependency set contains —
  // cancels the finished job before anything can install it.
  ASSERT_TRUE(VM.load("padA = ( 1 )", Err)) << Err;
  VM.settleBackgroundCompiles();
  TierStats Mid = VM.telemetry().Tier;
  EXPECT_GE(Mid.BackgroundCancelled, 1u);

  // Self-healing: the discard cleared the pending flag, so keeping the
  // method hot re-promotes it against the mutated world.
  for (int I = 0; I < 6; ++I) {
    ASSERT_TRUE(VM.evalInt("hot: 40", Out, Err)) << Err;
    EXPECT_EQ(Out, hotExpected(40));
  }
  VM.settleBackgroundCompiles();
  TierStats After = VM.telemetry().Tier;
  EXPECT_GE(After.BackgroundInstalled, 1u);
  EXPECT_GE(After.Promotions, 1u);
  ASSERT_TRUE(VM.evalInt("hot: 40", Out, Err)) << Err;
  EXPECT_EQ(Out, hotExpected(40));
}

// No stale install, in-flight edition: a shape mutation that lands while
// the worker is mid-compile — after its lookups already walked the mutated
// map — must cancel the job, because those memoized walks baked the old
// shape into the result.
TEST(BgCompile, InFlightJobCancelledByMidCompileShapeMutation) {
  VirtualMachine VM(bgPolicy());
  if (!VM.backgroundQueue())
    GTEST_SKIP() << "background compilation disabled by environment";
  CompileQueue *Q = VM.backgroundQueue();

  std::atomic<bool> Reached{false};
  std::atomic<bool> Proceed{false};
  Q->setFirstWalkHook([&Reached, &Proceed] {
    Reached = true;
    waitFor(Proceed);
  });

  std::string Err;
  int64_t Out = 0;
  ASSERT_TRUE(VM.load(kWorld, Err)) << Err;
  for (int I = 0; I < 4; ++I) {
    ASSERT_TRUE(VM.evalInt("hot: 40", Out, Err)) << Err;
    EXPECT_EQ(Out, hotExpected(40));
  }
  if (!waitFor(Reached)) {
    Proceed = true; // Never leave the worker parked.
    FAIL() << "worker never reached the first lookup walk";
  }

  // The worker is parked with the lobby already in its visited-map set;
  // this definition mutates the lobby under the exclusive shape lock and
  // must flag the in-flight job as cancelled.
  ASSERT_TRUE(VM.load("padB = ( 1 )", Err)) << Err;
  Proceed = true;
  VM.settleBackgroundCompiles();

  TierStats S = VM.telemetry().Tier;
  EXPECT_GE(S.BackgroundCancelled, 1u);

  // The world stays correct and the method still reaches optimized code
  // compiled against the post-mutation shape.
  for (int I = 0; I < 6; ++I) {
    ASSERT_TRUE(VM.evalInt("hot: 40", Out, Err)) << Err;
    EXPECT_EQ(Out, hotExpected(40));
  }
  VM.settleBackgroundCompiles();
  EXPECT_GE(VM.telemetry().Tier.BackgroundInstalled, 1u);
  ASSERT_TRUE(VM.evalInt("hot: 40", Out, Err)) << Err;
  EXPECT_EQ(Out, hotExpected(40));
}

// Saturation: a zero-capacity queue rejects every enqueue, so promotions
// take the synchronous fallback — the mutator stalls, compiles, and
// installs immediately, with the fallback visible in the stats.
TEST(BgCompile, SaturatedQueueFallsBackToSynchronousPromotion) {
  Policy P = bgPolicy();
  P.BackgroundQueueCap = 0;
  VirtualMachine VM(P);
  if (!VM.backgroundQueue())
    GTEST_SKIP() << "background compilation disabled by environment";
  ASSERT_EQ(VM.backgroundQueue()->capacity(), 0);

  std::string Err;
  int64_t Out = 0;
  ASSERT_TRUE(VM.load(kWorld, Err)) << Err;
  for (int I = 0; I < 6; ++I) {
    ASSERT_TRUE(VM.evalInt("hot: 40", Out, Err)) << Err;
    EXPECT_EQ(Out, hotExpected(40));
  }

  TierStats S = VM.telemetry().Tier;
  EXPECT_GE(S.BackgroundSyncFallbacks, 1u);
  EXPECT_EQ(S.BackgroundEnqueued, 0u);
  EXPECT_GE(S.Promotions, 1u);
  EXPECT_EQ(S.Swaps, S.Promotions); // Sync promotions install in place.
}

// Shutdown drains cleanly in both interesting states: with a finished
// result that was never installed, and with the worker parked mid-compile
// while more jobs sit pending behind it.
TEST(BgCompile, ShutdownWithQueuedWorkIsClean) {
  std::string Err;
  int64_t Out = 0;

  {
    // Finished-but-uninstalled result at destruction time.
    VirtualMachine VM(bgPolicy());
    if (!VM.backgroundQueue())
      GTEST_SKIP() << "background compilation disabled by environment";
    ASSERT_TRUE(VM.load(kWorld, Err)) << Err;
    for (int I = 0; I < 4; ++I) {
      ASSERT_TRUE(VM.evalInt("hot: 40", Out, Err)) << Err;
      EXPECT_EQ(Out, hotExpected(40));
    }
    VM.backgroundQueue()->waitIdle(); // Done, deliberately not installed.
  }

  {
    // Worker parked in an in-flight compile; releases just before the
    // destructor joins it.
    VirtualMachine VM(bgPolicy());
    if (!VM.backgroundQueue())
      GTEST_SKIP() << "background compilation disabled by environment";
    std::atomic<bool> Reached{false};
    std::atomic<bool> Proceed{false};
    VM.backgroundQueue()->setFirstWalkHook([&Reached, &Proceed] {
      Reached = true;
      waitFor(Proceed);
    });
    ASSERT_TRUE(VM.load(kWorld, Err)) << Err;
    for (int I = 0; I < 4; ++I) {
      ASSERT_TRUE(VM.evalInt("hot: 40", Out, Err)) << Err;
      EXPECT_EQ(Out, hotExpected(40));
    }
    EXPECT_TRUE(waitFor(Reached));
    Proceed = true;
    // ~VirtualMachine: worker finishes the in-flight job, pending jobs are
    // dropped, the thread joins. Nothing to assert beyond "no hang".
  }
}

// GC stress with the queue on: promotions race an artificially eager
// collector. Collections that land while the worker holds the GC gate
// defer (never block the compile), finished results' literals are traced
// as roots, and every answer stays correct.
TEST(BgCompile, GcStressPromotionsStayCorrect) {
  Policy P = bgPolicy();
  VirtualMachine VM(P);
  if (!VM.backgroundQueue())
    GTEST_SKIP() << "background compilation disabled by environment";
  VM.heap().setGcThresholdBytes(1 << 12);

  std::string Err;
  int64_t Out = 0;
  ASSERT_TRUE(VM.load(
      "base = ( 2 ). "
      "spin = ( | t <- 0. i <- 0 | [ i < 40 ] whileTrue: "
      "[ i: i + 1. t: t + (vectorOfSize: 4) size + base ]. t )",
      Err))
      << Err;
  const int64_t Expect = 40 * 6;
  for (int Round = 0; Round < 8; ++Round) {
    ASSERT_TRUE(VM.evalInt("spin", Out, Err)) << "round " << Round << ": "
                                              << Err;
    EXPECT_EQ(Out, Expect) << "round " << Round;
    if (Round == 4)
      VM.settleBackgroundCompiles();
  }
  VM.settleBackgroundCompiles();
  VM.heap().collect();

  EXPECT_GT(VM.heap().collectionCount(), 0u);
  EXPECT_GE(VM.telemetry().Tier.Promotions, 1u);
  ASSERT_TRUE(VM.evalInt("spin", Out, Err)) << Err;
  EXPECT_EQ(Out, Expect);
}

// Differential identity: the same program under the same policy computes
// bit-identical results with the queue on and off — background compilation
// moves work off-thread without changing a single answer.
TEST(BgCompile, SyncAndAsyncComputeIdenticalResults) {
  std::vector<int64_t> Results[2];
  for (int Mode = 0; Mode < 2; ++Mode) {
    Policy P = bgPolicy();
    P.BackgroundCompile = Mode == 1;
    VirtualMachine VM(P);
    std::string Err;
    int64_t Out = 0;
    ASSERT_TRUE(VM.load(kWorld, Err)) << Err;
    for (int I = 0; I < 8; ++I) {
      ASSERT_TRUE(VM.evalInt("hot: " + std::to_string(10 + I * 7), Out, Err))
          << Err;
      Results[Mode].push_back(Out);
    }
    VM.settleBackgroundCompiles();
    ASSERT_TRUE(VM.evalInt("hot: 100", Out, Err)) << Err;
    Results[Mode].push_back(Out);
  }
  EXPECT_EQ(Results[0], Results[1]);
  EXPECT_EQ(Results[0].back(), hotExpected(100));
}
