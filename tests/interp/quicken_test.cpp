//===-- tests/interp/quicken_test.cpp - Opcode quickening tests -----------===//
//
// Opcode quickening rewrites monomorphic Send sites in place to specialized
// opcodes (SendMono/SendGetF/SendSetF/SendConst) guarded by PIC entry 0.
// These tests pin down the full lifecycle: sites quicken once monomorphic,
// quickened guards reject foreign receivers and rewrite themselves back to
// the generic Send, and shape mutations eagerly de-quicken every compiled
// function (the map-pointer guard alone cannot catch a mutated-in-place map
// whose lookup results changed). Receiver laundering through the assignable
// lobby slot `cur` keeps the interesting sends dynamically bound under
// every policy, as in invalidation_test.cpp.
//
//===----------------------------------------------------------------------===//

#include "driver/vm.h"

#include <gtest/gtest.h>

#include <string>

using namespace mself;

namespace {

/// Number of quickened send opcodes currently present across every compiled
/// function's bytecode.
size_t quickenedOpCount(VirtualMachine &VM) {
  size_t N = 0;
  VM.code().forEach([&N](const CompiledFunction &F) {
    size_t I = 0;
    while (I < F.Code.size()) {
      Op O = static_cast<Op>(F.Code[I]);
      if (isQuickenedSend(O))
        ++N;
      I += static_cast<size_t>(1 + opArity(O));
    }
  });
  return N;
}

uint64_t perOp(VirtualMachine &VM, Op O) {
  return VM.interp().counters().PerOp[static_cast<int>(O)];
}

// A host object exercising all four quickened forms through one driver
// loop: `cur bump` is a method send, `cur n` a data-slot read, `n:` (inside
// bump) a data-slot write, and `cur k` a constant-slot read.
const char *kHostDefs =
    "obj = ( | parent* = lobby. n <- 0. k = 7. bump = ( n: n + 1 ) | ). "
    "cur <- 0. "
    "drive = ( | i <- 0. t <- 0 | cur n: 0. [ i < 20 ] whileTrue: "
    "[ i: i + 1. cur bump. t: t + cur n + cur k ]. t )";

// After iteration j the counter n is j, so drive returns
// sum_{j=1..20} (j + 7) = 210 + 140.
constexpr int64_t kDriveResult = 350;

} // namespace

// Monomorphic sites quicken on their first dispatch after the PIC fills,
// and every one of the four specialized opcodes actually executes.
TEST(Quicken, MonomorphicSitesQuickenAllFourKinds) {
  VirtualMachine VM(Policy::st80());
  std::string Err;
  int64_t Out = 0;
  ASSERT_TRUE(VM.load(kHostDefs, Err)) << Err;
  ASSERT_TRUE(VM.evalInt("cur: obj. drive", Out, Err)) << Err;
  EXPECT_EQ(Out, kDriveResult);

  DispatchStats S = VM.telemetry().Dispatch;
  EXPECT_GT(S.Quickenings, 0u);
  EXPECT_GT(S.QuickSends, 0u);
  EXPECT_EQ(S.Dequickenings, 0u); // Nothing polymorphic, nothing mutated.
  EXPECT_GT(perOp(VM, Op::SendMono), 0u);
  EXPECT_GT(perOp(VM, Op::SendGetF), 0u);
  EXPECT_GT(perOp(VM, Op::SendSetF), 0u);
  EXPECT_GT(perOp(VM, Op::SendConst), 0u);
  // The rewrites are visible in the cached bytecode itself.
  EXPECT_GT(quickenedOpCount(VM), 0u);
  // Quickened hits count as monomorphic PIC-served sends.
  EXPECT_LE(S.QuickSends, S.Sends);
}

// A site that turns polymorphic: the first receiver quickens it, the second
// receiver misses the quickened guard, and the site rewrites itself back to
// the generic Send (which then drives the PIC to the polymorphic state and
// stays generic).
TEST(Quicken, GuardMissDequickensPolymorphicSite) {
  VirtualMachine VM(Policy::st80());
  std::string Err;
  int64_t Out = 0;
  // tagOf: funnels both receivers through ONE `x tag` send site (writing
  // `cur tag` twice in the source would create two sites, each of which
  // would stay happily monomorphic).
  ASSERT_TRUE(VM.load(
      "a = ( | parent* = lobby. tag = ( 1 ) | ). "
      "b = ( | parent* = lobby. tag = ( 2 ) | ). "
      "tagOf: x = ( x tag ). "
      "probe = ( | t <- 0. i <- 0 | [ i < 6 ] whileTrue: "
      "[ i: i + 1. t: t + (tagOf: a) + (tagOf: b) ]. t )",
      Err))
      << Err;
  ASSERT_TRUE(VM.evalInt("probe", Out, Err)) << Err;
  EXPECT_EQ(Out, 18); // 6 * (1 + 2).

  DispatchStats S = VM.telemetry().Dispatch;
  // The `cur tag` site quickened for a's map, then b's map missed the
  // guard and reset it to the generic Send.
  EXPECT_GT(S.Quickenings, 0u);
  EXPECT_GT(S.Dequickenings, 0u);
  // The site is polymorphic now; generic dispatch keeps serving it.
  EXPECT_GT(S.SendsPoly, 0u);
}

// Shape mutations de-quicken eagerly. The lobby map mutates *in place*, so
// a quickened site whose cached map is unaffected would still pass its map
// guard while the world underneath it changed; flushInlineCaches() must
// rewrite every quickened opcode back to the generic Send, and execution
// afterwards must re-resolve, stay correct, and re-quicken.
TEST(Quicken, ShapeMutationDequickensEverything) {
  VirtualMachine VM(Policy::st80());
  std::string Err;
  int64_t Out = 0;
  ASSERT_TRUE(VM.load(kHostDefs, Err)) << Err;
  ASSERT_TRUE(VM.evalInt("cur: obj. drive", Out, Err)) << Err;
  EXPECT_EQ(Out, kDriveResult);
  ASSERT_GT(quickenedOpCount(VM), 0u);
  uint64_t QuickeningsBefore = VM.telemetry().Dispatch.Quickenings;

  // Any new lobby slot is a shape mutation on the (in-place) lobby map.
  ASSERT_TRUE(VM.load("unrelated = ( 99 )", Err)) << Err;

  DispatchStats S = VM.telemetry().Dispatch;
  EXPECT_GT(S.DequickenedSites, 0u);
  EXPECT_GT(S.InlineCacheFlushes, 0u);
  // No specialized opcode survives the flush anywhere in the code cache.
  EXPECT_EQ(quickenedOpCount(VM), 0u);

  // Re-running re-resolves through the generic path and re-quickens.
  ASSERT_TRUE(VM.evalInt("drive", Out, Err)) << Err;
  EXPECT_EQ(Out, kDriveResult);
  EXPECT_GT(VM.telemetry().Dispatch.Quickenings, QuickeningsBefore);
  EXPECT_GT(quickenedOpCount(VM), 0u);
}

// The headline soundness scenario from invalidation_test.cpp, with
// quickening active: a send that fails while a selector is missing must
// pick up the later definition, and the surrounding quickened machinery
// must not serve any stale decision.
TEST(Quicken, LateDefinitionVisibleThroughQuickenedCode) {
  VirtualMachine VM(Policy::st80());
  std::string Err;
  int64_t Out = 0;
  ASSERT_TRUE(VM.load(
      "thing = ( | parent* = lobby. go = ( mystery ) | ). cur <- 0", Err))
      << Err;
  ASSERT_TRUE(VM.evalInt("cur: thing. 0", Out, Err)) << Err;
  for (int I = 0; I < 3; ++I) {
    EXPECT_FALSE(VM.evalInt("cur go", Out, Err));
    EXPECT_NE(Err.find("not understood"), std::string::npos) << Err;
  }
  ASSERT_TRUE(VM.load("mystery = ( 9 )", Err)) << Err;
  ASSERT_TRUE(VM.evalInt("cur go", Out, Err)) << Err;
  EXPECT_EQ(Out, 9);
  ASSERT_TRUE(VM.evalInt("cur go", Out, Err)) << Err;
  EXPECT_EQ(Out, 9);
}

// Quickening across tier promotion: baseline code quickens, crossing the
// hotness threshold swaps in freshly compiled optimized code mid-run, and
// the new unit re-quickens cleanly with results unchanged throughout.
TEST(Quicken, SurvivesTierPromotion) {
  Policy P = Policy::newSelf();
  P.TieredCompilation = true;
  P.TierUpThreshold = 3;
  VirtualMachine VM(P);
  std::string Err;
  int64_t Out = 0;
  ASSERT_TRUE(VM.load(kHostDefs, Err)) << Err;
  ASSERT_TRUE(VM.evalInt("cur: obj. 0", Out, Err)) << Err;
  for (int I = 0; I < 8; ++I) {
    ASSERT_TRUE(VM.evalInt("drive", Out, Err)) << Err;
    EXPECT_EQ(Out, kDriveResult) << "call " << I;
  }
  VM.settleBackgroundCompiles();
  EXPECT_GE(VM.telemetry().Tier.Promotions, 1u);
  EXPECT_GT(VM.telemetry().Dispatch.Quickenings, 0u);
  EXPECT_GT(VM.telemetry().Dispatch.QuickSends, 0u);
}

// The knob: with OpcodeQuickening off (or with inline caches off, which
// quickening needs for its guards), no site ever rewrites and no
// specialized opcode executes — while results are identical.
TEST(Quicken, DisabledEngineStaysFullyGeneric) {
  for (int Mode = 0; Mode < 2; ++Mode) {
    Policy P = Policy::st80();
    if (Mode == 0)
      P.OpcodeQuickening = false;
    else
      P.InlineCaches = false; // Implies quickening off in the driver.
    VirtualMachine VM(P);
    std::string Err;
    int64_t Out = 0;
    ASSERT_TRUE(VM.load(kHostDefs, Err)) << Err;
    ASSERT_TRUE(VM.evalInt("cur: obj. drive", Out, Err)) << Err;
    EXPECT_EQ(Out, kDriveResult) << "mode " << Mode;

    DispatchStats S = VM.telemetry().Dispatch;
    EXPECT_EQ(S.Quickenings, 0u) << "mode " << Mode;
    EXPECT_EQ(S.QuickSends, 0u) << "mode " << Mode;
    EXPECT_EQ(S.Dequickenings, 0u) << "mode " << Mode;
    EXPECT_EQ(quickenedOpCount(VM), 0u) << "mode " << Mode;
    EXPECT_EQ(perOp(VM, Op::SendMono), 0u) << "mode " << Mode;
  }
}

// dequickenAll() itself is idempotent and precise: it only rewrites
// quickened opcodes, leaves counts consistent, and a second call finds
// nothing left to do.
TEST(Quicken, DequickenAllIsIdempotent) {
  VirtualMachine VM(Policy::st80());
  std::string Err;
  int64_t Out = 0;
  ASSERT_TRUE(VM.load(kHostDefs, Err)) << Err;
  ASSERT_TRUE(VM.evalInt("cur: obj. drive", Out, Err)) << Err;
  size_t Quickened = quickenedOpCount(VM);
  ASSERT_GT(Quickened, 0u);

  VM.code().dequickenAll();
  EXPECT_EQ(VM.code().dequickenedSites(), Quickened);
  EXPECT_EQ(quickenedOpCount(VM), 0u);
  VM.code().dequickenAll();
  EXPECT_EQ(VM.code().dequickenedSites(), Quickened); // Nothing new.

  // The de-quickened code still runs (and re-quickens) correctly.
  ASSERT_TRUE(VM.evalInt("drive", Out, Err)) << Err;
  EXPECT_EQ(Out, kDriveResult);
}
