//===-- tests/interp/tiering_test.cpp - Tiered adaptive recompilation ------===//
//
// The counter state machine (cold → baseline → hot → optimized), threshold
// edge cases (0, 1, max), and promotion at a loop back-edge mid-execution.
// With tiering on, the baseline tier never inlines, so method bodies are
// compiled as named cache units reached through dynamic dispatch — which is
// what lets these tests observe per-function hotness counters by name.
//
//===----------------------------------------------------------------------===//

#include "driver/vm.h"

#include <gtest/gtest.h>

#include <limits>
#include <vector>

using namespace mself;

namespace {

Policy tiered(int Threshold) {
  Policy P = Policy::newSelf();
  P.TieredCompilation = true;
  P.TierUpThreshold = Threshold;
  return P;
}

/// Collects every compiled function whose name is \p Name.
std::vector<const CompiledFunction *> functionsNamed(VirtualMachine &VM,
                                                     const std::string &Name) {
  std::vector<const CompiledFunction *> Out;
  VM.code().forEach([&](const CompiledFunction &F) {
    if (F.Name && *F.Name == Name)
      Out.push_back(&F);
  });
  return Out;
}

} // namespace

TEST(Tiering, ColdFunctionStaysBaseline) {
  VirtualMachine VM(tiered(100));
  std::string Err;
  ASSERT_TRUE(VM.load("bump: n = ( n + 1 )", Err)) << Err;
  for (int I = 0; I < 5; ++I) {
    int64_t Out = 0;
    ASSERT_TRUE(VM.evalInt("bump: 41", Out, Err)) << Err;
    EXPECT_EQ(Out, 42);
  }
  TierStats S = VM.telemetry().Tier;
  EXPECT_GT(S.BaselineCompiles, 0u);
  EXPECT_EQ(S.OptimizedCompiles, 0u);
  EXPECT_EQ(S.Promotions, 0u);

  auto Fns = functionsNamed(VM, "bump:");
  ASSERT_EQ(Fns.size(), 1u);
  EXPECT_EQ(Fns[0]->CodeTier, CompiledFunction::Tier::Baseline);
  EXPECT_EQ(Fns[0]->HotCount, 5u);
  EXPECT_EQ(Fns[0]->ReplacedBy, nullptr);
}

// The full counter state machine: cold (not compiled) → baseline with a
// rising counter → promoted at the threshold, with the old code forwarding
// to its replacement and the cache serving the optimized version.
TEST(Tiering, CounterStateMachineAcrossCalls) {
  VirtualMachine VM(tiered(3));
  std::string Err;
  ASSERT_TRUE(VM.load("bump: n = ( n + 1 )", Err)) << Err;
  EXPECT_TRUE(functionsNamed(VM, "bump:").empty()); // Cold: nothing yet.

  int64_t Out = 0;
  ASSERT_TRUE(VM.evalInt("bump: 1", Out, Err)) << Err;
  EXPECT_EQ(Out, 2);
  auto Fns = functionsNamed(VM, "bump:");
  ASSERT_EQ(Fns.size(), 1u);
  EXPECT_EQ(Fns[0]->CodeTier, CompiledFunction::Tier::Baseline);
  EXPECT_EQ(Fns[0]->HotCount, 1u);

  ASSERT_TRUE(VM.evalInt("bump: 2", Out, Err)) << Err;
  EXPECT_EQ(functionsNamed(VM, "bump:")[0]->HotCount, 2u);
  EXPECT_EQ(VM.telemetry().Tier.Promotions, 0u);

  // Third invocation crosses the threshold: the bump happens on activation
  // entry, so in synchronous mode this very call already runs the optimized
  // code; with background compilation the call keeps running baseline and
  // the settle below completes the install at the next safepoint.
  ASSERT_TRUE(VM.evalInt("bump: 3", Out, Err)) << Err;
  EXPECT_EQ(Out, 4);
  VM.settleBackgroundCompiles();
  TierStats S = VM.telemetry().Tier;
  // Synchronously the third call already runs the optimized bump:, whose
  // inlined body never sends + — exactly one unit promotes. In background
  // mode that call still runs baseline and sends +, so the + unit's own
  // counter crosses too: the count is mode-dependent, the per-unit
  // invariants below are not.
  if (VM.policy().BackgroundCompile) {
    EXPECT_GE(S.Promotions, 1u);
    EXPECT_EQ(S.Promotions, S.Swaps);
  } else {
    EXPECT_EQ(S.Promotions, 1u);
    EXPECT_EQ(S.Swaps, 1u);
  }
  EXPECT_GE(S.OptimizedCompiles, 1u);
  EXPECT_GE(S.RetiredFunctions, 1u); // The replaced baseline code.

  Fns = functionsNamed(VM, "bump:");
  ASSERT_EQ(Fns.size(), 2u);
  const CompiledFunction *Old = Fns[0]->ReplacedBy ? Fns[0] : Fns[1];
  const CompiledFunction *New = Fns[0]->ReplacedBy ? Fns[1] : Fns[0];
  EXPECT_EQ(Old->CodeTier, CompiledFunction::Tier::Baseline);
  EXPECT_EQ(New->CodeTier, CompiledFunction::Tier::Optimized);
  EXPECT_EQ(Old->ReplacedBy, New);

  // Steady state: later calls run the optimized entry; no re-promotion.
  uint64_t Settled = VM.telemetry().Tier.Promotions;
  ASSERT_TRUE(VM.evalInt("bump: 4", Out, Err)) << Err;
  EXPECT_EQ(Out, 5);
  VM.settleBackgroundCompiles();
  EXPECT_EQ(VM.telemetry().Tier.Promotions, Settled);
}

// Threshold <= 0 degenerates to full-opt-first-call: no baseline tier.
TEST(Tiering, ThresholdZeroCompilesOptimizedDirectly) {
  VirtualMachine VM(tiered(0));
  std::string Err;
  ASSERT_TRUE(VM.load("bump: n = ( n + 1 )", Err)) << Err;
  int64_t Out = 0;
  ASSERT_TRUE(VM.evalInt("bump: 41", Out, Err)) << Err;
  EXPECT_EQ(Out, 42);
  TierStats S = VM.telemetry().Tier;
  EXPECT_EQ(S.BaselineCompiles, 0u);
  EXPECT_GE(S.OptimizedCompiles, 1u);
  EXPECT_EQ(S.Promotions, 0u);
  VM.code().forEach([](const CompiledFunction &F) {
    EXPECT_EQ(F.CodeTier, CompiledFunction::Tier::Optimized);
  });
}

// Threshold 1: the first invocation bump already crosses the threshold, so
// baseline code is compiled but promotes before it ever runs twice — the
// top-level body itself promotes on entry, and its optimized recompile
// inlines the send, so the result comes from optimized code immediately.
TEST(Tiering, ThresholdOnePromotesOnFirstCall) {
  VirtualMachine VM(tiered(1));
  std::string Err;
  ASSERT_TRUE(VM.load("bump: n = ( n + 1 )", Err)) << Err;
  int64_t Out = 0;
  ASSERT_TRUE(VM.evalInt("bump: 41", Out, Err)) << Err;
  EXPECT_EQ(Out, 42);
  VM.settleBackgroundCompiles();
  TierStats S = VM.telemetry().Tier;
  EXPECT_GT(S.BaselineCompiles, 0u);
  EXPECT_GE(S.Promotions, 1u);
  EXPECT_EQ(S.Promotions, S.Swaps);
  // Every promoted baseline function forwards to its optimized replacement.
  size_t Forwards = 0;
  VM.code().forEach([&](const CompiledFunction &F) {
    if (F.ReplacedBy) {
      ++Forwards;
      EXPECT_EQ(F.CodeTier, CompiledFunction::Tier::Baseline);
      EXPECT_EQ(F.ReplacedBy->CodeTier, CompiledFunction::Tier::Optimized);
    }
  });
  EXPECT_EQ(Forwards, S.Promotions);
}

// Threshold "max": counters can never cross it — baseline-only execution.
TEST(Tiering, ThresholdMaxNeverPromotes) {
  VirtualMachine VM(tiered(std::numeric_limits<int>::max()));
  std::string Err;
  ASSERT_TRUE(VM.load(
      "spin = ( | t <- 0. i <- 0 | "
      "[ i < 200 ] whileTrue: [ i: i + 1. t: t + i ]. t )",
      Err))
      << Err;
  int64_t Out = 0;
  ASSERT_TRUE(VM.evalInt("spin", Out, Err)) << Err;
  EXPECT_EQ(Out, 200 * 201 / 2);
  TierStats S = VM.telemetry().Tier;
  EXPECT_GT(S.BaselineCompiles, 0u);
  EXPECT_EQ(S.OptimizedCompiles, 0u);
  EXPECT_EQ(S.Promotions, 0u);
  VM.code().forEach([](const CompiledFunction &F) {
    EXPECT_EQ(F.CodeTier, CompiledFunction::Tier::Baseline);
  });
}

// Promotion at a loop back-edge, mid-execution: `spin` is invoked exactly
// once, so only the per-iteration back-edge bumps (from the interpreter's
// native while loop) can cross the threshold — and they do so while the
// activation is still running. The executing frame finishes on the old
// code; the swap is visible in the cache, the PICs, and the event log.
TEST(Tiering, PromotionAtLoopBackEdgeMidExecution) {
  constexpr int kThreshold = 50;
  VirtualMachine VM(tiered(kThreshold));
  std::string Err;
  ASSERT_TRUE(VM.load(
      "spin = ( | t <- 0. i <- 0 | "
      "[ i < 400 ] whileTrue: [ i: i + 1. t: t + i ]. t )",
      Err))
      << Err;
  int64_t Out = 0;
  ASSERT_TRUE(VM.evalInt("spin", Out, Err)) << Err;
  EXPECT_EQ(Out, 400 * 401 / 2);
  VM.settleBackgroundCompiles();

  EXPECT_GE(VM.telemetry().Tier.Promotions, 1u);
  auto Fns = functionsNamed(VM, "spin");
  ASSERT_EQ(Fns.size(), 2u);
  const CompiledFunction *Old = Fns[0]->ReplacedBy ? Fns[0] : Fns[1];
  EXPECT_EQ(Old->CodeTier, CompiledFunction::Tier::Baseline);
  ASSERT_NE(Old->ReplacedBy, nullptr);
  EXPECT_EQ(Old->ReplacedBy->CodeTier, CompiledFunction::Tier::Optimized);

  // The swap event records the hotness at promotion: one invocation plus
  // back-edges, crossing the threshold exactly — mid-loop, not on re-entry.
  // With background compilation the counter keeps bumping on the running
  // baseline frame while the compile is in flight, so the hotness at the
  // (deferred, safepoint) swap is only bounded below by the threshold.
  bool SawSwap = false;
  VmTelemetry Telem = VM.telemetry();
  for (const CompileEvent &E : Telem.Events)
    if (E.EventKind == CompileEvent::Kind::Swap && E.Name &&
        *E.Name == "spin") {
      SawSwap = true;
      if (VM.policy().BackgroundCompile) {
        EXPECT_GE(E.HotCount, static_cast<uint32_t>(kThreshold));
      } else {
        EXPECT_EQ(E.HotCount, static_cast<uint32_t>(kThreshold));
      }
    }
  EXPECT_TRUE(SawSwap);

  // A second call runs the optimized version straight from the cache.
  ASSERT_TRUE(VM.evalInt("spin", Out, Err)) << Err;
  EXPECT_EQ(Out, 400 * 401 / 2);
}

// Results must be identical before, across, and after promotion.
TEST(Tiering, PromotedCodeComputesIdenticalResults) {
  VirtualMachine VM(tiered(4));
  std::string Err;
  ASSERT_TRUE(VM.load("calc: n = ( | t <- 0 | "
                      "1 to: n Do: [ :i | t: t + (i * i) ]. t )",
                      Err))
      << Err;
  for (int N = 1; N <= 12; ++N) {
    int64_t Expect = 0;
    for (int I = 1; I <= N; ++I)
      Expect += static_cast<int64_t>(I) * I;
    int64_t Out = 0;
    ASSERT_TRUE(VM.evalInt("calc: " + std::to_string(N), Out, Err)) << Err;
    EXPECT_EQ(Out, Expect) << "call " << N;
  }
  VM.settleBackgroundCompiles();
  EXPECT_GE(VM.telemetry().Tier.Promotions, 1u);
}

// The event log records the whole lifecycle with phase timings, and the
// driver surfaces it through the VirtualMachine accessor.
TEST(Tiering, EventLogRecordsLifecycle) {
  VirtualMachine VM(tiered(1));
  std::string Err;
  ASSERT_TRUE(VM.load("bump: n = ( n + 1 )", Err)) << Err;
  int64_t Out = 0;
  ASSERT_TRUE(VM.evalInt("bump: 41", Out, Err)) << Err;
  VM.settleBackgroundCompiles();

  VmTelemetry Telem = VM.telemetry();
  EXPECT_EQ(Telem.EventsRecorded, Telem.Events.size()); // Nothing evicted.
  bool SawBaseline = false, SawPromote = false, SawSwap = false;
  uint64_t LastSeq = 0;
  bool First = true;
  for (const CompileEvent &E : Telem.Events) {
    if (!First)
      EXPECT_GT(E.Seq, LastSeq);
    First = false;
    LastSeq = E.Seq;
    EXPECT_GE(E.Seconds, 0.0);
    EXPECT_GE(E.AnalyzeSeconds, 0.0);
    EXPECT_GE(E.SplitSeconds, 0.0);
    EXPECT_GE(E.LowerSeconds, 0.0);
    EXPECT_GE(E.EmitSeconds, 0.0);
    switch (E.EventKind) {
    case CompileEvent::Kind::Compile:
      if (E.Tier == CompiledFunction::Tier::Baseline)
        SawBaseline = true;
      break;
    case CompileEvent::Kind::Promote:
      SawPromote = true;
      EXPECT_EQ(E.Tier, CompiledFunction::Tier::Optimized);
      break;
    case CompileEvent::Kind::Swap:
      SawSwap = true;
      break;
    case CompileEvent::Kind::Invalidate:
      break;
    }
  }
  EXPECT_TRUE(SawBaseline);
  EXPECT_TRUE(SawPromote);
  EXPECT_TRUE(SawSwap);
}

// The log is bounded: the oldest events are evicted at capacity while the
// all-time count keeps growing.
TEST(Tiering, EventLogIsBounded) {
  CompilationEventLog Log(16);
  for (int I = 0; I < 100; ++I)
    Log.append(CompileEvent());
  EXPECT_EQ(Log.events().size(), 16u);
  EXPECT_EQ(Log.totalRecorded(), 100u);
  EXPECT_EQ(Log.events().front().Seq, 84u); // 100 - 16.
  EXPECT_EQ(Log.events().back().Seq, 99u);
}
