//===-- tests/interp/blocks_test.cpp - Closure and NLR semantics -----------===//

#include "driver/vm.h"

#include <gtest/gtest.h>

using namespace mself;

namespace {

class BlocksTest : public ::testing::Test {
protected:
  VirtualMachine VM{Policy::st80()};

  int64_t evalInt(const std::string &Src) {
    int64_t Out = 0;
    std::string Err;
    bool Ok = VM.evalInt(Src, Out, Err);
    EXPECT_TRUE(Ok) << Err << "  [source: " << Src << "]";
    return Out;
  }

  void loadOk(const std::string &Src) {
    std::string Err;
    ASSERT_TRUE(VM.load(Src, Err)) << Err;
  }
};

} // namespace

TEST_F(BlocksTest, BlockValueBasic) {
  EXPECT_EQ(evalInt("[ 7 ] value"), 7);
  EXPECT_EQ(evalInt("[ :a | a + 1 ] value: 4"), 5);
  EXPECT_EQ(evalInt("[ :a :b | a * b ] value: 6 With: 7"), 42);
}

TEST_F(BlocksTest, EmptyBlockReturnsNil) {
  Interpreter::Outcome O = VM.eval("[ ] value");
  ASSERT_TRUE(O.Ok) << O.Message;
  EXPECT_EQ(O.Result, VM.world().nilValue());
}

TEST_F(BlocksTest, WrongArgCountIsError) {
  Interpreter::Outcome O = VM.eval("[ :a | a ] value");
  EXPECT_FALSE(O.Ok);
}

TEST_F(BlocksTest, SelfInsideBlockIsHomeSelf) {
  loadOk("o = ( | parent* = lobby. v = ( 31 ). "
         "probe = ( [ self v ] value ) | )");
  EXPECT_EQ(evalInt("o probe"), 31);
}

TEST_F(BlocksTest, CaptureArgumentOfMethod) {
  loadOk("adder: n = ( [ :x | x + n ] )");
  EXPECT_EQ(evalInt("(adder: 10) value: 5"), 15);
}

TEST_F(BlocksTest, ClosuresShareOneEnvironment) {
  EXPECT_EQ(evalInt("m = ( | x <- 0. up. down | up: [ x: x + 10 ]. "
                    "down: [ x: x - 3 ]. up value. down value. up value. "
                    "x ). m"),
            17);
}

TEST_F(BlocksTest, NestedBlocksReachOuterScopes) {
  EXPECT_EQ(evalInt("m = ( | total <- 0 | 1 to: 3 Do: [ :i | "
                    "1 to: 3 Do: [ :j | total: total + (i * j) ] ]. "
                    "total ). m"),
            36);
}

TEST_F(BlocksTest, BlockLocalVariables) {
  EXPECT_EQ(evalInt("[ | :a. t <- 10 | t + a ] value: 5"), 15);
}

TEST_F(BlocksTest, NonLocalReturnThroughTwoBlocks) {
  loadOk("search = ( 1 to: 5 Do: [ :i | 1 to: 5 Do: [ :j | "
         "(i * j) == 12 ifTrue: [ ^ (i * 10) + j ] ] ]. 0 )");
  EXPECT_EQ(evalInt("search"), 34);
}

TEST_F(BlocksTest, NLRFromDeadHomeIsError) {
  loadOk("maker = ( [ ^ 1 ] ). escapee <- 0");
  std::string Err;
  ASSERT_TRUE(VM.load("escapee: maker", Err)) << Err;
  Interpreter::Outcome O = VM.eval("escapee value");
  EXPECT_FALSE(O.Ok);
}

TEST_F(BlocksTest, WhileFalseAndLoopTraits) {
  EXPECT_EQ(evalInt("m = ( | i <- 0 | [ i >= 5 ] whileFalse: [ i: i + 1 ]. "
                    "i ). m"),
            5);
}

TEST_F(BlocksTest, ConditionMustBeBoolean) {
  Interpreter::Outcome O = VM.eval("[ 3 ] whileTrue: [ ]");
  EXPECT_FALSE(O.Ok);
}

TEST_F(BlocksTest, BlockPassedDownTwoLevels) {
  loadOk("apply: b = ( b value: 3 ). wrap: b = ( apply: b )");
  EXPECT_EQ(evalInt("wrap: [ :x | x * 100 ]"), 300);
}

TEST_F(BlocksTest, HigherOrderCollect) {
  EXPECT_EQ(evalInt(
                "m = ( | v. s <- 0 | v: (vectorOfSize: 5). "
                "v doIndexes: [ :i | v at: i Put: i * i ]. "
                "v do: [ :e | s: s + e ]. s ). m"),
            30);
}
