//===-- tests/interp/escape_test.cpp - Escape analysis & arena lifetimes ---===//
//
// The arena is a performance device, never a semantic one: every test here
// pins one way the runtime nets must keep arena allocation invisible.
// Invalidation voids escape proofs (and stale in-flight units demote to
// the heap), non-local returns unwind through arena frames, evacuated
// environments keep sharing semantics via forwarding, the per-frame budget
// falls back to the heap, and the collector treats live arenas as roots.
//
// Every suite name starts with "Escape" so `ctest -R Escape` — the
// check-escape target, which re-runs this battery under MINISELF_GC_STRESS
// and MINISELF_BG_COMPILE — picks up the whole battery.
//
//===----------------------------------------------------------------------===//

#include "driver/vm.h"

#include <gtest/gtest.h>

#include <string>

using namespace mself;

namespace {

/// First compiled function named \p Name, or null.
const CompiledFunction *findNamed(VirtualMachine &VM, const std::string &Name) {
  const CompiledFunction *Found = nullptr;
  VM.code().forEach([&](const CompiledFunction &F) {
    if (!Found && F.Name && *F.Name == Name)
      Found = &F;
  });
  return Found;
}

/// Evaluates \p Expr after loading \p Defs under \p P; fails the test on
/// any error.
int64_t evalUnder(const Policy &P, const std::string &Defs,
                  const std::string &Expr) {
  VirtualMachine VM(P);
  std::string Err;
  EXPECT_TRUE(VM.load(Defs, Err)) << Err;
  int64_t Got = 0;
  EXPECT_TRUE(VM.evalInt(Expr, Got, Err)) << Err;
  return Got;
}

// A callee that declines inlining (the `^ 0` guard) yet provably only
// invokes its block parameter — the canonical ArgEscaping shape. Callers
// sending `use:` with a literal block get that block arena-allocated.
const char *kUseDef =
    "stashGuard <- 0. "
    "use: blk = ( stashGuard == 99 ifTrue: [ ^ 0 ]. blk value: 5 )";

const char *kHostDef =
    "host = ( | parent* = lobby. run: k = ( use: [ :x | x + k ] ) | ). "
    "cur <- 0";

} // namespace

// The DependsOnMaps contract, driven through the only shape mutation the
// system has (defining a new lobby slot): a unit compiled while `use:`
// was missing bakes in the failing lookup and proves nothing about its
// block, so the block stays on the heap. Installing `use:` voids the unit
// via its recorded map dependencies; the recompile resolves the callee
// body, proves the block ArgEscaping, and arena allocation begins — with
// the result identical to what the heap lowering computes.
TEST(EscapeInvalidation, ProofFollowsMapDependencies) {
  VirtualMachine VM(Policy::newSelf());
  std::string Err;
  ASSERT_TRUE(VM.load(kHostDef, Err)) << Err;
  int64_t Got = 0;
  ASSERT_TRUE(VM.evalInt("cur: host. 0", Got, Err)) << Err;

  // `use:` does not exist yet: the call fails, and the compiled unit has
  // no callee body to prove anything with — nothing touches the arena.
  EXPECT_FALSE(VM.evalInt("cur run: 3", Got, Err));
  EXPECT_NE(Err.find("not understood"), std::string::npos) << Err;
  EXPECT_EQ(VM.telemetry().Escape.ArenaBlockAllocs, 0u);

  // Installing the callee mutates the lobby's shape; every unit whose
  // compile-time lookups walked the lobby map — including the failed
  // `run:` — is invalidated.
  uint64_t InvBefore = VM.telemetry().Tier.Invalidations;
  ASSERT_TRUE(VM.load(kUseDef, Err)) << Err;
  EXPECT_GT(VM.telemetry().Tier.Invalidations, InvBefore);

  // The recompile proves the block ArgEscaping and the arena lights up.
  ASSERT_TRUE(VM.evalInt("cur run: 3", Got, Err)) << Err;
  EXPECT_EQ(Got, 8);
  EXPECT_GT(VM.telemetry().Escape.ArenaBlockAllocs, 0u);

  // And stays correct on the cached recompiled unit.
  ASSERT_TRUE(VM.evalInt("cur run: 4", Got, Err)) << Err;
  EXPECT_EQ(Got, 9);
}

// The demotion net itself: an activation of a voided unit must complete
// without touching the arena. Organic invalidation also flushes dispatch
// caches (so the stale unit is simply never re-entered — that path is
// covered above); here the Invalidated flag is raised behind the code
// manager's back to simulate the in-flight case, where an activation that
// started before the mutation is still on the stack when its escape proof
// dies. The arena opcodes must see the flag and fall back to the heap.
TEST(EscapeInvalidation, StaleActivationDemotesToHeap) {
  VirtualMachine VM(Policy::newSelf());
  std::string Err;
  ASSERT_TRUE(VM.load(std::string(kUseDef) + ". " + kHostDef, Err)) << Err;
  int64_t Got = 0;
  ASSERT_TRUE(VM.evalInt("cur: host. 0", Got, Err)) << Err;
  ASSERT_TRUE(VM.evalInt("cur run: 3", Got, Err)) << Err;
  EXPECT_EQ(Got, 8);

  // A healthy call's per-call arena footprint, as the baseline to beat:
  // other units on the call path (use:'s own guard block) keep their
  // arena sites, so the demoted call shrinks the delta rather than
  // zeroing it.
  VmTelemetry T0 = VM.telemetry();
  ASSERT_TRUE(VM.evalInt("cur run: 3", Got, Err)) << Err;
  EXPECT_EQ(Got, 8);
  VmTelemetry T1 = VM.telemetry();
  uint64_t HealthyBlocks =
      T1.Escape.ArenaBlockAllocs - T0.Escape.ArenaBlockAllocs;
  EXPECT_GT(HealthyBlocks, 0u);
  EXPECT_EQ(T1.Escape.ArenaDemotedAllocs, 0u);

  const CompiledFunction *Run = findNamed(VM, "run:");
  ASSERT_NE(Run, nullptr);
  const_cast<CompiledFunction *>(Run)->Invalidated = true;

  // The monomorphic cache still points at the unit, so it runs again —
  // now its arena sites demote to the heap, and the answer must not
  // change.
  ASSERT_TRUE(VM.evalInt("cur run: 3", Got, Err)) << Err;
  EXPECT_EQ(Got, 8);
  VmTelemetry T2 = VM.telemetry();
  EXPECT_GT(T2.Escape.ArenaDemotedAllocs, 0u);
  EXPECT_LT(T2.Escape.ArenaBlockAllocs - T1.Escape.ArenaBlockAllocs,
            HealthyBlocks);
}

// A non-local return fired from inside an arena-allocated block unwinds
// through frames holding arena marks: every popped frame's mark must be
// released and the early answer delivered intact. The probe callee
// declines inlining, so a real arena block crosses a real frame boundary
// on every iteration before the `^ i` cuts the loop short.
TEST(EscapeNLR, NonLocalReturnThroughArenaFrames) {
  const std::string Defs =
      "probe: a Using: blk = ( a < 0 ifTrue: [ ^ 0 ]. blk value: a ). "
      "nlrHost = ( | parent* = lobby. "
      "scan: n = ( | i <- 0. t <- 0 | "
      "[ i < n ] whileTrue: [ "
      "t: t + (probe: i Using: [ :x | (x * x) > 50 ifTrue: [ ^ i ]. x ]). "
      "i: i + 1 ]. 0 - t ) | )";

  // Squares exceed 50 first at i = 8, so the NLR exits with 8 — under the
  // arena lowering and, identically, with escape analysis off.
  Policy NoEscape = Policy::newSelf();
  NoEscape.EscapeAnalysis = false;
  EXPECT_EQ(evalUnder(NoEscape, Defs, "nlrHost scan: 100"), 8);

  VirtualMachine VM(Policy::newSelf());
  std::string Err;
  ASSERT_TRUE(VM.load(Defs, Err)) << Err;
  int64_t Got = 0;
  for (int I = 0; I < 4; ++I) {
    ASSERT_TRUE(VM.evalInt("nlrHost scan: 100", Got, Err)) << Err;
    EXPECT_EQ(Got, 8);
  }
  VmTelemetry T = VM.telemetry();
  EXPECT_GT(T.Escape.ArenaBlockAllocs, 0u);
  EXPECT_GT(T.Escape.ArenaReleases, 0u);
  // The interpreter's arena must be fully unwound between top-level
  // evaluations — an NLR that leaked a mark would show up as a nonzero
  // resident high-water mark growing without bound. Four identical scans
  // reaching the same high-water mark is the cheap proxy: the mark is a
  // per-scan peak, not an accumulation.
  EXPECT_GT(T.Escape.ArenaHighWaterBytes, 0u);
}

// Mutation after capture: when a heap block captures an arena environment
// (the baseline tier's syntactic screen can arena-allocate an env whose
// nested unit later creates an escaping block), the evacuation net copies
// the env to the heap — and the original frame keeps mutating it. The
// forwarding pointer on the evacuated shell must keep both views of the
// environment the same object, or the block reads a stale copy.
TEST(EscapeEvacuation, MutationAfterCaptureKeepsSharing) {
  const std::string Defs =
      "evacHost = ( | parent* = lobby. "
      "evac: n = ( | i <- 0. b <- 0 | "
      "[ i < n ] whileTrue: [ b: [ :x | x + i ]. i: i + 1 ]. "
      "b value: 5 ). | )";

  // The block must observe i's final value (7), not its value at capture.
  VirtualMachine VM(Policy::st80());
  std::string Err;
  ASSERT_TRUE(VM.load(Defs, Err)) << Err;
  int64_t Got = 0;
  ASSERT_TRUE(VM.evalInt("evacHost evac: 7", Got, Err)) << Err;
  EXPECT_EQ(Got, 12);
  VmTelemetry T = VM.telemetry();
  EXPECT_GT(T.Escape.ArenaEnvAllocs, 0u);
  EXPECT_GT(T.Escape.ArenaEvacuations, 0u);

  // Same answer under the optimizing compiler (which inlines the loop and
  // never materializes the env) and with the analysis off entirely.
  EXPECT_EQ(evalUnder(Policy::newSelf(), Defs, "evacHost evac: 7"), 12);
  Policy NoEscape = Policy::st80();
  NoEscape.EscapeAnalysis = false;
  EXPECT_EQ(evalUnder(NoEscape, Defs, "evacHost evac: 7"), 12);
}

// The per-frame budget: one frame that allocates arena blocks without
// bound must stop charging the arena once it passes the budget and fall
// back to the heap — unreleased arena memory is bounded by budget × depth,
// not by loop trip count. Results stay identical either side of the line.
TEST(EscapeArena, FrameBudgetDemotesToHeap) {
  const std::string Defs =
      "apply: a Using: blk = ( a < 0 ifTrue: [ ^ 0 ]. blk value: a ). "
      "spinHost = ( | parent* = lobby. "
      "spin: n = ( | i <- 0. t <- 0 | "
      "[ i < n ] whileTrue: [ "
      "t: ((apply: t + i Using: [ :x | (x * 3) % 9973 ]) + t) % 9973. "
      "i: i + 1 ]. t ) | )";

  Policy NoEscape = Policy::newSelf();
  NoEscape.EscapeAnalysis = false;
  int64_t Want = evalUnder(NoEscape, Defs, "spinHost spin: 2000");

  VirtualMachine VM(Policy::newSelf());
  std::string Err;
  ASSERT_TRUE(VM.load(Defs, Err)) << Err;
  int64_t Got = 0;
  ASSERT_TRUE(VM.evalInt("spinHost spin: 2000", Got, Err)) << Err;
  EXPECT_EQ(Got, Want);

  VmTelemetry T = VM.telemetry();
  // The first ~budget's worth of blocks go to the arena, the rest demote.
  EXPECT_GT(T.Escape.ArenaBlockAllocs, 0u);
  EXPECT_GT(T.Escape.ArenaDemotedAllocs, 0u);
  // And the resident arena never grew past (roughly) one frame's budget:
  // the spin frame is charged at most kFrameBudgetBytes before demotion.
  EXPECT_LE(T.Escape.ArenaHighWaterBytes,
            4 * ActivationArena::kFrameBudgetBytes);
}

// Live arenas are GC roots: with a tiny collection threshold, scavenges
// run while arena blocks and environments are live, and the heap objects
// they reference (the captured vector) must survive every collection.
TEST(EscapeGc, LiveArenasKeepHeapReferentsAlive) {
  const std::string Defs =
      "apply: a Using: blk = ( a < 0 ifTrue: [ ^ 0 ]. blk value: a ). "
      "gcHost = ( | parent* = lobby. "
      "churn: n = ( | i <- 0. v. t <- 0 | "
      "v: (vectorOfSize: 4). v at: 0 Put: 7. "
      "[ i < n ] whileTrue: [ "
      "t: t + (apply: 3 Using: [ :x | (vectorOfSize: 8) size + (v at: 0) + x ]). "
      "i: i + 1 ]. t ) | )";

  // Per iteration: 8 (fresh garbage vector's size) + 7 (captured, must
  // survive the scavenges the garbage forces) + 3 (the argument).
  const int64_t Want = 200 * 18;

  Policy P = Policy::newSelf();
  P.GcNurseryKiB = 4; // Scavenge mid-loop, arena objects live each time.
  P.GcPromotionAge = 1;
  P.GcThresholdKiB = 16;
  VirtualMachine VM(P);
  std::string Err;
  ASSERT_TRUE(VM.load(Defs, Err)) << Err;
  int64_t Got = 0;
  for (int Round = 0; Round < 3; ++Round) {
    ASSERT_TRUE(VM.evalInt("gcHost churn: 200", Got, Err)) << Err;
    EXPECT_EQ(Got, Want) << "round " << Round;
  }
  EXPECT_GT(VM.heap().collectionCount(), 0u);
  EXPECT_GT(VM.telemetry().Escape.ArenaBlockAllocs, 0u);
}

// With the analysis off, the matrix's noescape rows must be genuinely
// arena-free — the knob is the ablation baseline E17 measures against.
TEST(EscapeArena, PolicyKnobTurnsTheArenaOff) {
  Policy NoEscape = Policy::newSelf();
  NoEscape.EscapeAnalysis = false;
  VirtualMachine VM(NoEscape);
  std::string Err;
  ASSERT_TRUE(VM.load(std::string(kUseDef) + ". " + kHostDef, Err)) << Err;
  int64_t Got = 0;
  ASSERT_TRUE(VM.evalInt("cur: host. 0", Got, Err)) << Err;
  ASSERT_TRUE(VM.evalInt("cur run: 3", Got, Err)) << Err;
  EXPECT_EQ(Got, 8);
  VmTelemetry T = VM.telemetry();
  EXPECT_EQ(T.Escape.ArenaEnvAllocs, 0u);
  EXPECT_EQ(T.Escape.ArenaBlockAllocs, 0u);
  EXPECT_EQ(T.Escape.ArenaBytes, 0u);
  EXPECT_EQ(T.Escape.EnvsArena, 0u);
  // The fingerprint must split escape/noescape compilation universes.
  EXPECT_NE(NoEscape.fingerprint(), Policy::newSelf().fingerprint());
}
