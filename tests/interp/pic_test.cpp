//===-- tests/interp/pic_test.cpp - Polymorphic inline cache states --------===//
//
// Unit tests for the dispatch fast path: the per-site PIC state machine
// (Empty → Monomorphic → Polymorphic → Megamorphic), per-entry hit
// counters, single-entry replacement mode, the global lookup cache, and
// cache invalidation on world shape mutation.
//
//===----------------------------------------------------------------------===//

#include "driver/vm.h"
#include "runtime/lookup.h"

#include <gtest/gtest.h>

#include <string>

using namespace mself;

namespace {

/// Definitions for \p N distinct receiver shapes (each its own map), a
/// vector holding one of each, and a driver that cycles sends of `tag`
/// through a single send site.
std::string shapeWorld(int N) {
  std::string S;
  for (int I = 0; I < N; ++I) {
    std::string Id = std::to_string(I);
    S += "s" + Id + " = ( | parent* = lobby. tag = ( " + std::to_string(I + 1) +
         " ) | ). ";
  }
  S += "mkShapes = ( | v | v: (vectorOfSize: " + std::to_string(N) + "). ";
  for (int I = 0; I < N; ++I)
    S += "v at: " + std::to_string(I) + " Put: s" + std::to_string(I) + ". ";
  S += "v ). ";
  // One dynamically-bound `tag` send site, shared by every receiver kind.
  S += "drive: n Kinds: k = ( | v. t <- 0 | v: mkShapes. "
       "1 to: n Do: [ :i | t: t + (v at: i % k) tag ]. t )";
  return S;
}

/// Sum of `tag` over n sends cycling through the first k kinds
/// (tag of s_j is j+1; index i % k for i in 1..n).
int64_t expectedSum(int64_t N, int64_t K) {
  int64_t T = 0;
  for (int64_t I = 1; I <= N; ++I)
    T += (I % K) + 1;
  return T;
}

/// ST-80 base policy so sends stay dynamically bound, with PIC knobs.
Policy picPolicy(int Arity = 4, bool Poly = true, bool Glc = true) {
  Policy P = Policy::st80();
  P.InlineCaches = true;
  P.PolymorphicInlineCaches = Poly;
  P.PicArity = Arity;
  P.UseGlobalLookupCache = Glc;
  return P;
}

} // namespace

TEST(PicTest, MonomorphicSiteStaysMonomorphic) {
  VirtualMachine VM(picPolicy());
  std::string Err;
  ASSERT_TRUE(VM.load(shapeWorld(1), Err)) << Err;
  int64_t Out = 0;
  ASSERT_TRUE(VM.evalInt("drive: 200 Kinds: 1", Out, Err)) << Err;
  EXPECT_EQ(Out, expectedSum(200, 1));

  DispatchStats S = VM.telemetry().Dispatch;
  EXPECT_GT(S.SendsMono, 0u);
  EXPECT_EQ(S.ToMegamorphic, 0u);
  EXPECT_EQ(S.SitesMega, 0u);
  EXPECT_GT(S.SitesMono, 0u);
  // A steady-state monomorphic workload is almost all PIC hits.
  EXPECT_GT(S.picHitRate(), 0.9);
}

TEST(PicTest, MonoToPolyTransition) {
  VirtualMachine VM(picPolicy());
  std::string Err;
  ASSERT_TRUE(VM.load(shapeWorld(2), Err)) << Err;
  int64_t Out = 0;
  ASSERT_TRUE(VM.evalInt("drive: 200 Kinds: 2", Out, Err)) << Err;
  EXPECT_EQ(Out, expectedSum(200, 2));

  DispatchStats S = VM.telemetry().Dispatch;
  EXPECT_GE(S.MonoToPoly, 1u);
  EXPECT_GT(S.SendsPoly, 0u);
  EXPECT_GT(S.SitesPoly, 0u);
  EXPECT_EQ(S.ToMegamorphic, 0u);
  EXPECT_EQ(S.SitesMega, 0u);
  EXPECT_GT(S.picHitRate(), 0.9);
}

TEST(PicTest, MegamorphicTransitionDispatchesThroughGlobalCache) {
  VirtualMachine VM(picPolicy(/*Arity=*/4));
  std::string Err;
  ASSERT_TRUE(VM.load(shapeWorld(8), Err)) << Err;
  int64_t Out = 0;
  ASSERT_TRUE(VM.evalInt("drive: 400 Kinds: 8", Out, Err)) << Err;
  EXPECT_EQ(Out, expectedSum(400, 8));

  DispatchStats S = VM.telemetry().Dispatch;
  EXPECT_GE(S.ToMegamorphic, 1u);
  EXPECT_GT(S.SendsMega, 0u);
  EXPECT_GT(S.SitesMega, 0u);
  // Megamorphic sends skip the PIC and resolve via the global cache.
  EXPECT_GT(S.GlcHits, 0u);
  // Nearly every send still avoids the full parent walk.
  EXPECT_GT(S.combinedHitRate(), 0.9);
}

TEST(PicTest, PerEntryHitCountersAccumulate) {
  VirtualMachine VM(picPolicy());
  std::string Err;
  ASSERT_TRUE(VM.load(shapeWorld(3), Err)) << Err;
  int64_t Out = 0;
  ASSERT_TRUE(VM.evalInt("drive: 300 Kinds: 3", Out, Err)) << Err;
  EXPECT_EQ(Out, expectedSum(300, 3));

  // Find the polymorphic `tag` site and check its per-entry counters.
  bool FoundPoly = false;
  VM.code().forEach([&](const CompiledFunction &F) {
    for (const InlineCache &C : F.Caches) {
      if (C.SiteState != InlineCache::State::Polymorphic || C.Size < 3)
        continue;
      FoundPoly = true;
      uint64_t EntrySum = 0;
      for (int I = 0; I < C.Size; ++I) {
        EXPECT_NE(C.Entries[I].CachedMap, nullptr);
        // Every receiver kind recurs, so every entry gets probe hits.
        EXPECT_GT(C.Entries[I].HitCount, 0u);
        EntrySum += C.Entries[I].HitCount;
      }
      // Site-level hits are exactly the sum over entries.
      EXPECT_EQ(EntrySum, C.HitCount);
      EXPECT_GT(C.MissCount, 0u); // At least the initial fills missed.
    }
  });
  EXPECT_TRUE(FoundPoly);
}

TEST(PicTest, MonomorphicModeEvictsInsteadOfGrowing) {
  VirtualMachine VM(picPolicy(/*Arity=*/4, /*Poly=*/false, /*Glc=*/false));
  EXPECT_EQ(VM.interp().dispatchOptions().clampedArity(), 1);
  std::string Err;
  ASSERT_TRUE(VM.load(shapeWorld(2), Err)) << Err;
  int64_t Out = 0;
  ASSERT_TRUE(VM.evalInt("drive: 100 Kinds: 2", Out, Err)) << Err;
  EXPECT_EQ(Out, expectedSum(100, 2));

  DispatchStats S = VM.telemetry().Dispatch;
  // Alternating receivers thrash the single entry: replacement, never
  // a polymorphic or megamorphic transition.
  EXPECT_GT(S.PicEvictions, 0u);
  EXPECT_EQ(S.MonoToPoly, 0u);
  EXPECT_EQ(S.ToMegamorphic, 0u);
  EXPECT_EQ(S.SitesPoly, 0u);
  EXPECT_EQ(S.SitesMega, 0u);
}

TEST(PicTest, ArityIsClampedToPhysicalCapacity) {
  {
    VirtualMachine VM(picPolicy(/*Arity=*/100));
    EXPECT_EQ(VM.interp().dispatchOptions().clampedArity(),
              InlineCache::kCapacity);
  }
  {
    VirtualMachine VM(picPolicy(/*Arity=*/0));
    EXPECT_EQ(VM.interp().dispatchOptions().clampedArity(), 1);
  }
}

TEST(PicTest, SmallArityGoesMegamorphicEarly) {
  VirtualMachine VM(picPolicy(/*Arity=*/2));
  std::string Err;
  ASSERT_TRUE(VM.load(shapeWorld(3), Err)) << Err;
  int64_t Out = 0;
  ASSERT_TRUE(VM.evalInt("drive: 120 Kinds: 3", Out, Err)) << Err;
  EXPECT_EQ(Out, expectedSum(120, 3));
  DispatchStats S = VM.telemetry().Dispatch;
  EXPECT_GE(S.ToMegamorphic, 1u);
  EXPECT_GT(S.SitesMega, 0u);
}

// Regression: a site cached for one receiver map must dispatch correctly
// when a second map arrives, and again when the ninth (beyond the PIC's
// physical capacity) arrives.
TEST(PicTest, SecondAndNinthReceiverMapDispatchCorrectly) {
  VirtualMachine VM(picPolicy(/*Arity=*/8));
  std::string Err;
  ASSERT_TRUE(VM.load(shapeWorld(9) + ". poke: o = ( o tag )", Err)) << Err;

  int64_t Out = 0;
  // Warm the site monomorphically on s0's map.
  ASSERT_TRUE(VM.evalInt("(poke: s0) + (poke: s0) + (poke: s0)", Out, Err))
      << Err;
  EXPECT_EQ(Out, 3);
  // Second map through the same (still-warm) site.
  ASSERT_TRUE(VM.evalInt("poke: s1", Out, Err)) << Err;
  EXPECT_EQ(Out, 2);
  // Maps 3..8 fill the PIC to capacity; the ninth overflows it.
  ASSERT_TRUE(VM.evalInt("(poke: s2) + (poke: s3) + (poke: s4) + (poke: s5) "
                         "+ (poke: s6) + (poke: s7)",
                         Out, Err))
      << Err;
  EXPECT_EQ(Out, 3 + 4 + 5 + 6 + 7 + 8);
  ASSERT_TRUE(VM.evalInt("poke: s8", Out, Err)) << Err;
  EXPECT_EQ(Out, 9);
  // And the original receiver still dispatches to its own method.
  ASSERT_TRUE(VM.evalInt("poke: s0", Out, Err)) << Err;
  EXPECT_EQ(Out, 1);
}

TEST(PicTest, GlobalCacheFillsAndHits) {
  VirtualMachine VM(picPolicy());
  std::string Err;
  ASSERT_TRUE(VM.load(shapeWorld(8), Err)) << Err;
  int64_t Out = 0;
  ASSERT_TRUE(VM.evalInt("drive: 400 Kinds: 8", Out, Err)) << Err;

  const GlobalLookupCache &Glc = VM.world().lookupCache();
  EXPECT_TRUE(Glc.enabled());
  EXPECT_GT(Glc.stats().Fills, 0u);
  EXPECT_GT(Glc.stats().Hits, 0u);
  EXPECT_GT(Glc.occupied(), 0u);
  EXPECT_LE(Glc.occupied(), Glc.capacity());
}

TEST(PicTest, ShapeMutationFlushesEveryCache) {
  VirtualMachine VM(picPolicy());
  std::string Err;
  ASSERT_TRUE(VM.load(shapeWorld(3), Err)) << Err;
  int64_t Out = 0;
  ASSERT_TRUE(VM.evalInt("drive: 90 Kinds: 3", Out, Err)) << Err;

  GlobalLookupCache &Glc = VM.world().lookupCache();
  ASSERT_GT(Glc.occupied(), 0u);
  uint64_t FlushesBefore = VM.code().inlineCacheFlushes();
  uint64_t InvalidationsBefore = Glc.stats().Invalidations;
  uint64_t VersionBefore = VM.world().shapeVersion();

  // Defining a new lobby slot is a shape mutation: the lobby map gains a
  // slot, so every cached lookup may be stale.
  ASSERT_TRUE(VM.load("freshSlot = ( 77 )", Err)) << Err;

  EXPECT_GT(VM.world().shapeVersion(), VersionBefore);
  EXPECT_GT(VM.code().inlineCacheFlushes(), FlushesBefore);
  EXPECT_GT(Glc.stats().Invalidations, InvalidationsBefore);
  EXPECT_EQ(Glc.occupied(), 0u);

  // Every previously-warmed send site is back to Empty.
  DispatchStats S = VM.telemetry().Dispatch;
  EXPECT_EQ(S.SitesMono + S.SitesPoly + S.SitesMega, 0u);
  EXPECT_EQ(S.SitesEmpty, S.Sites);

  // The world still dispatches correctly and re-warms.
  ASSERT_TRUE(VM.evalInt("(drive: 90 Kinds: 3) + freshSlot", Out, Err)) << Err;
  EXPECT_EQ(Out, expectedSum(90, 3) + 77);
}

// Regression: a cached NotFound result must not survive the definition of
// the missing slot.
TEST(PicTest, CachedNotFoundInvalidatedByDefinition) {
  VirtualMachine VM(picPolicy());
  std::string Err;
  int64_t Out = 0;
  // `mystery` does not exist yet: the send fails (and the NotFound result
  // may be cached).
  EXPECT_FALSE(VM.evalInt("mystery", Out, Err));
  EXPECT_FALSE(VM.evalInt("mystery", Out, Err));
  // Defining it flushes the negative cache entry.
  ASSERT_TRUE(VM.load("mystery = ( 99 )", Err)) << Err;
  ASSERT_TRUE(VM.evalInt("mystery", Out, Err)) << Err;
  EXPECT_EQ(Out, 99);
}

TEST(PicTest, DisabledCachesFallBackToFullLookup) {
  VirtualMachine VM(Policy::pureInterp());
  std::string Err;
  ASSERT_TRUE(VM.load(shapeWorld(3), Err)) << Err;
  int64_t Out = 0;
  ASSERT_TRUE(VM.evalInt("drive: 60 Kinds: 3", Out, Err)) << Err;
  EXPECT_EQ(Out, expectedSum(60, 3));

  DispatchStats S = VM.telemetry().Dispatch;
  EXPECT_EQ(S.PicHits, 0u);
  EXPECT_EQ(S.PicFills, 0u);
  EXPECT_EQ(S.GlcHits, 0u);
  EXPECT_EQ(S.SendsUncached, S.Sends);
  EXPECT_GT(S.FullLookups, 0u);
  EXPECT_EQ(S.SitesMono + S.SitesPoly + S.SitesMega, 0u);
}

TEST(PicTest, TinyGlobalCacheCollisionsStayCorrect) {
  Policy P = picPolicy(/*Arity=*/2);
  P.GlobalLookupCacheEntries = 4; // Force heavy index-collision traffic.
  VirtualMachine VM(P);
  std::string Err;
  ASSERT_TRUE(VM.load(shapeWorld(8), Err)) << Err;
  int64_t Out = 0;
  ASSERT_TRUE(VM.evalInt("drive: 400 Kinds: 8", Out, Err)) << Err;
  EXPECT_EQ(Out, expectedSum(400, 8));
  EXPECT_LE(VM.world().lookupCache().capacity(), 4u);
}
