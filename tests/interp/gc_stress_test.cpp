//===-- tests/interp/gc_stress_test.cpp - GC under execution ---------------===//
//
// Allocation-heavy programs with an artificially tiny nursery and old-space
// growth threshold, under every compiler configuration: objects, closures,
// environments, and arrays must survive exactly as long as they are
// reachable, and must keep working after the scavenger moves them.
//
//===----------------------------------------------------------------------===//

#include "driver/vm.h"

#include <gtest/gtest.h>

using namespace mself;

namespace {

class GcStress : public ::testing::TestWithParam<const char *> {
protected:
  Policy policy() const {
    std::string N = GetParam();
    if (N == "st80")
      return Policy::st80();
    if (N == "oldself")
      return Policy::oldSelf();
    return Policy::newSelf();
  }

  /// The configured policy with the collector squeezed down so that these
  /// small workloads trigger many collections: a 4 KiB nursery scavenges
  /// mid-loop, promotion age 1 tenures survivors fast, and a small
  /// old-space growth threshold forces full collections too.
  Policy stressPolicy(int ThresholdKiB) const {
    Policy P = policy();
    P.GcNurseryKiB = 4;
    P.GcPromotionAge = 1;
    P.GcThresholdKiB = ThresholdKiB;
    return P;
  }
};

} // namespace

TEST_P(GcStress, ObjectGraphSurvivesCollections) {
  VirtualMachine VM(stressPolicy(4));
  std::string Err;
  ASSERT_TRUE(VM.load(
      "node = ( | parent* = lobby. next. val <- 0 | ). "
      "buildChain: n = ( | head. nd | "
      "  head: nil. "
      "  1 to: n Do: [ :i | nd: node clone. nd val: i. nd next: head. "
      "    head: nd ]. "
      "  head ). "
      "sumChain: head = ( | s <- 0. cur | cur: head. "
      "  [ cur notNil ] whileTrue: [ s: s + cur val. cur: cur next ]. s )",
      Err))
      << Err;
  int64_t Out = 0;
  ASSERT_TRUE(VM.evalInt("sumChain: (buildChain: 500)", Out, Err)) << Err;
  EXPECT_EQ(Out, 125250);
  EXPECT_GT(VM.heap().collectionCount(), 0u);
}

TEST_P(GcStress, GarbageIsActuallyReclaimed) {
  VirtualMachine VM(stressPolicy(16));
  std::string Err;
  ASSERT_TRUE(VM.load("churn = ( | t <- 0 | 1 to: 2000 Do: [ :i | "
                      "t: t + (vectorOfSize: 20) size ]. t )",
                      Err))
      << Err;
  int64_t Out = 0;
  ASSERT_TRUE(VM.evalInt("churn", Out, Err)) << Err;
  EXPECT_EQ(Out, 40000);
  // 2000 vectors of 20 slots were allocated; almost all must be gone.
  VM.heap().collect();
  EXPECT_LT(VM.heap().objectCount(), 3000u);
}

TEST_P(GcStress, ClosuresAndEnvironmentsSurvive) {
  VirtualMachine VM(stressPolicy(4));
  std::string Err;
  ASSERT_TRUE(VM.load(
      "mkCounter = ( | c <- 0 | [ c: c + 1. c ] ). "
      "crank = ( | f. t <- 0 | f: mkCounter. "
      "  1 to: 300 Do: [ :i | t: t + ((vectorOfSize: 5) size) - 5 + "
      "    f value - f value + 1 ]. t )",
      Err))
      << Err;
  // Each iteration allocates garbage vectors while the counter closure's
  // environment must stay live across collections.
  int64_t Out = 0;
  ASSERT_TRUE(VM.evalInt("crank", Out, Err)) << Err;
  // f value - f value == -1 each iteration (counter increments twice),
  // plus 1 => 0; total 0... the value checks the env survived intact.
  EXPECT_EQ(Out, 0);
  EXPECT_GT(VM.heap().collectionCount(), 0u);
}

TEST_P(GcStress, DeepRecursionWithAllocation) {
  VirtualMachine VM(stressPolicy(8));
  std::string Err;
  ASSERT_TRUE(VM.load(
      "deep: n = ( n == 0 ifTrue: [ 0 ] False: [ "
      "(vectorOfSize: 3) size - 3 + (deep: n - 1) + 1 ] )",
      Err))
      << Err;
  int64_t Out = 0;
  ASSERT_TRUE(VM.evalInt("deep: 400", Out, Err)) << Err;
  EXPECT_EQ(Out, 400);
}

// Allocation-heavy *polymorphic* send loop: six receiver kinds cycle
// through one send site (driving it polymorphic, then megamorphic under
// the default PIC arity) while every send allocates garbage vectors under
// a tiny collection threshold. The maps, method objects, and slot holders
// cached in PIC entries and in the global lookup cache must be traced as
// roots, or a collection mid-loop would leave dangling cache entries.
TEST_P(GcStress, PolymorphicSendLoopSurvivesCollections) {
  VirtualMachine VM(stressPolicy(4));
  std::string Defs;
  for (int I = 0; I < 6; ++I) {
    std::string Id = std::to_string(I);
    // Each tag method allocates garbage, then yields its kind number.
    Defs += "k" + Id + " = ( | parent* = lobby. tag = ( "
            "(vectorOfSize: 3) size - 3 + " + std::to_string(I + 1) +
            " ) | ). ";
  }
  Defs += "mkKinds = ( | v | v: (vectorOfSize: 6). ";
  for (int I = 0; I < 6; ++I)
    Defs += "v at: " + std::to_string(I) + " Put: k" + std::to_string(I) + ". ";
  Defs += "v ). "
          "churnPoly: n = ( | v. t <- 0 | v: mkKinds. "
          "1 to: n Do: [ :i | t: t + (v at: i % 6) tag ]. t )";
  std::string Err;
  ASSERT_TRUE(VM.load(Defs, Err)) << Err;

  // 600 iterations: each residue 0..5 occurs 100 times; tags sum to 21
  // per 6 iterations.
  int64_t Out = 0;
  ASSERT_TRUE(VM.evalInt("churnPoly: 600", Out, Err)) << Err;
  EXPECT_EQ(Out, 2100);
  EXPECT_GT(VM.heap().collectionCount(), 0u);
  EXPECT_GT(VM.interp().counters().Sends, 0u);

  // A full collection with every cache warm, then the same workload: the
  // cached bindings must still dispatch correctly.
  VM.heap().collect();
  ASSERT_TRUE(VM.evalInt("churnPoly: 600", Out, Err)) << Err;
  EXPECT_EQ(Out, 2100);
}

// Clone-churn variant: the receiver objects themselves are garbage (a fresh
// clone per iteration) while the site's cached map and field bindings stay
// hot across collections.
TEST_P(GcStress, CloneChurnKeepsDispatchCachesValid) {
  VirtualMachine VM(stressPolicy(4));
  std::string Err;
  ASSERT_TRUE(VM.load(
      "proto = ( | parent* = lobby. val <- 0. dbl = ( val + val ) | ). "
      "spin: n = ( | o. t <- 0 | 1 to: n Do: [ :i | "
      "o: proto clone. o val: i. t: t + o dbl ]. t )",
      Err))
      << Err;
  int64_t Out = 0;
  ASSERT_TRUE(VM.evalInt("spin: 400", Out, Err)) << Err;
  EXPECT_EQ(Out, 400 * 401); // 2 * sum(1..400)
  EXPECT_GT(VM.heap().collectionCount(), 0u);
}

// Quickened send sites cache PIC-entry operands (receiver maps, slot
// holders, constants); when the scavenger moves the cached objects, the
// updated PIC entries are what keep those sites valid. Force quickening on
// and verify quick sends and scavenges both actually happened.
TEST_P(GcStress, QuickenedSitesSurviveObjectMotion) {
  Policy P = stressPolicy(512);
  P.OpcodeQuickening = true;
  P.InlineCaches = true;
  VirtualMachine VM(P);
  std::string Err;
  ASSERT_TRUE(VM.load(
      "pt = ( | parent* = lobby. x <- 0. getX = ( x ) | ). "
      "sweep: n = ( | o. t <- 0 | 1 to: n Do: [ :i | "
      "o: pt clone. o x: i. t: t + o getX + ((vectorOfSize: 2) size) - 2 ]. "
      "t )",
      Err))
      << Err;
  int64_t Out = 0;
  ASSERT_TRUE(VM.evalInt("sweep: 500", Out, Err)) << Err;
  EXPECT_EQ(Out, 500 * 501 / 2);
  EXPECT_GT(VM.heap().stats().Scavenges, 0u);
  // Optimizing presets may inline every send in the loop away; only the
  // non-inlining baseline is guaranteed to leave quickenable send sites.
  if (!P.Inlining) {
    EXPECT_GT(VM.interp().counters().QuickSends, 0u);
  }
}

// Tier promotion swaps optimized code in mid-run while the scavenger moves
// objects under the live frames: literals and caches of both the baseline
// and the optimized code must be updated across the swap.
TEST_P(GcStress, TieredPromotionSurvivesObjectMotion) {
  Policy P = stressPolicy(512);
  P.TieredCompilation = true;
  P.TierUpThreshold = 8;
  VirtualMachine VM(P);
  std::string Err;
  ASSERT_TRUE(VM.load(
      "acc = ( | parent* = lobby. v <- 0. add: n = ( v: v + n. v ) | ). "
      "grind: n = ( | a. t <- 0 | a: acc clone. 1 to: n Do: [ :i | "
      "t: t + (a add: 1) - (a add: 0) + ((vectorOfSize: 3) size) - 3 + 1 ]. "
      "t )",
      Err))
      << Err;
  int64_t Out = 0;
  ASSERT_TRUE(VM.evalInt("grind: 400", Out, Err)) << Err;
  EXPECT_EQ(Out, 400);
  EXPECT_GT(VM.heap().stats().Scavenges, 0u);
  VM.settleBackgroundCompiles();
  EXPECT_GE(VM.telemetry().Tier.Promotions, 1u);
}

INSTANTIATE_TEST_SUITE_P(Policies, GcStress,
                         ::testing::Values("st80", "oldself", "newself"),
                         [](const ::testing::TestParamInfo<const char *> &I) {
                           return std::string(I.param);
                         });
