//===-- tests/interp/gc_stress_test.cpp - GC under execution ---------------===//
//
// Allocation-heavy programs with an artificially tiny collection threshold,
// under every compiler configuration: objects, closures, environments, and
// arrays must survive exactly as long as they are reachable.
//
//===----------------------------------------------------------------------===//

#include "driver/vm.h"

#include <gtest/gtest.h>

using namespace mself;

namespace {

class GcStress : public ::testing::TestWithParam<const char *> {
protected:
  Policy policy() const {
    std::string N = GetParam();
    if (N == "st80")
      return Policy::st80();
    if (N == "oldself")
      return Policy::oldSelf();
    return Policy::newSelf();
  }
};

} // namespace

TEST_P(GcStress, ObjectGraphSurvivesCollections) {
  VirtualMachine VM(policy());
  VM.heap().setGcThresholdBytes(1 << 12);
  std::string Err;
  ASSERT_TRUE(VM.load(
      "node = ( | parent* = lobby. next. val <- 0 | ). "
      "buildChain: n = ( | head. nd | "
      "  head: nil. "
      "  1 to: n Do: [ :i | nd: node clone. nd val: i. nd next: head. "
      "    head: nd ]. "
      "  head ). "
      "sumChain: head = ( | s <- 0. cur | cur: head. "
      "  [ cur notNil ] whileTrue: [ s: s + cur val. cur: cur next ]. s )",
      Err))
      << Err;
  int64_t Out = 0;
  ASSERT_TRUE(VM.evalInt("sumChain: (buildChain: 500)", Out, Err)) << Err;
  EXPECT_EQ(Out, 125250);
  EXPECT_GT(VM.heap().collectionCount(), 0u);
}

TEST_P(GcStress, GarbageIsActuallyReclaimed) {
  VirtualMachine VM(policy());
  VM.heap().setGcThresholdBytes(1 << 14);
  std::string Err;
  ASSERT_TRUE(VM.load("churn = ( | t <- 0 | 1 to: 2000 Do: [ :i | "
                      "t: t + (vectorOfSize: 20) size ]. t )",
                      Err))
      << Err;
  int64_t Out = 0;
  ASSERT_TRUE(VM.evalInt("churn", Out, Err)) << Err;
  EXPECT_EQ(Out, 40000);
  // 2000 vectors of 20 slots were allocated; almost all must be gone.
  VM.heap().collect();
  EXPECT_LT(VM.heap().objectCount(), 3000u);
}

TEST_P(GcStress, ClosuresAndEnvironmentsSurvive) {
  VirtualMachine VM(policy());
  VM.heap().setGcThresholdBytes(1 << 12);
  std::string Err;
  ASSERT_TRUE(VM.load(
      "mkCounter = ( | c <- 0 | [ c: c + 1. c ] ). "
      "crank = ( | f. t <- 0 | f: mkCounter. "
      "  1 to: 300 Do: [ :i | t: t + ((vectorOfSize: 5) size) - 5 + "
      "    f value - f value + 1 ]. t )",
      Err))
      << Err;
  // Each iteration allocates garbage vectors while the counter closure's
  // environment must stay live across collections.
  int64_t Out = 0;
  ASSERT_TRUE(VM.evalInt("crank", Out, Err)) << Err;
  // f value - f value == -1 each iteration (counter increments twice),
  // plus 1 => 0; total 0... the value checks the env survived intact.
  EXPECT_EQ(Out, 0);
  EXPECT_GT(VM.heap().collectionCount(), 0u);
}

TEST_P(GcStress, DeepRecursionWithAllocation) {
  VirtualMachine VM(policy());
  VM.heap().setGcThresholdBytes(1 << 13);
  std::string Err;
  ASSERT_TRUE(VM.load(
      "deep: n = ( n == 0 ifTrue: [ 0 ] False: [ "
      "(vectorOfSize: 3) size - 3 + (deep: n - 1) + 1 ] )",
      Err))
      << Err;
  int64_t Out = 0;
  ASSERT_TRUE(VM.evalInt("deep: 400", Out, Err)) << Err;
  EXPECT_EQ(Out, 400);
}

INSTANTIATE_TEST_SUITE_P(Policies, GcStress,
                         ::testing::Values("st80", "oldself", "newself"),
                         [](const ::testing::TestParamInfo<const char *> &I) {
                           return std::string(I.param);
                         });
