//===-- tests/interp/invalidation_test.cpp - Compiled-method invalidation --===//
//
// Shape mutations must void exactly the compiled functions whose
// compile-time lookups walked the mutated map: dependent code is
// invalidated and recompiles with fresh bindings, independent code is left
// alone, and the code-cache census distinguishes live from voided entries.
//
// The receiver-laundering device used throughout: methods are invoked off
// the assignable lobby slot `cur`, whose static type the optimizer cannot
// know — so the send stays dynamically bound and the callee is compiled as
// its own cache unit (the thing invalidation acts on) instead of being
// inlined into a single-use top-level body.
//
//===----------------------------------------------------------------------===//

#include "driver/vm.h"

#include <gtest/gtest.h>

#include <string>

using namespace mself;

namespace {

/// First compiled function named \p Name, or null.
const CompiledFunction *findNamed(VirtualMachine &VM, const std::string &Name) {
  const CompiledFunction *Found = nullptr;
  VM.code().forEach([&](const CompiledFunction &F) {
    if (!Found && F.Name && *F.Name == Name)
      Found = &F;
  });
  return Found;
}

} // namespace

// The headline regression: a function compiled when a selector did not
// exist inlines the lookup failure. Defining the selector afterwards must
// invalidate that function — re-running it may never serve the stale
// compiled answer. Exercised under full optimization and both tiering
// modes, since the stale unit can sit in either tier's cache.
TEST(Invalidation, StaleInlinedLookupNeverServed) {
  struct Mode {
    const char *Label;
    bool Tiered;
    int Threshold;
  };
  for (const Mode &M : {Mode{"full-opt", false, 0}, Mode{"tier1", true, 1},
                        Mode{"tierN", true, 3}}) {
    Policy P = Policy::newSelf();
    P.TieredCompilation = M.Tiered;
    P.TierUpThreshold = M.Threshold;
    VirtualMachine VM(P);
    std::string Err;
    ASSERT_TRUE(VM.load(
        "thing = ( | parent* = lobby. go = ( mystery ) | ). cur <- 0", Err))
        << M.Label << ": " << Err;
    int64_t Out = 0;
    ASSERT_TRUE(VM.evalInt("cur: thing. 0", Out, Err)) << M.Label << ": "
                                                       << Err;

    // `mystery` does not exist: every call fails, including repeats served
    // from the compiled (possibly promoted) unit with the failure baked in.
    for (int I = 0; I < 5; ++I) {
      EXPECT_FALSE(VM.evalInt("cur go", Out, Err)) << M.Label;
      EXPECT_NE(Err.find("not understood"), std::string::npos)
          << M.Label << ": " << Err;
    }

    // Let any pending background promotion install first: only optimized
    // code carries compile-time dependency edges, so the invalidation below
    // must act on the promoted unit, not a baseline placeholder.
    VM.settleBackgroundCompiles();

    // Defining the missing selector mutates the lobby's shape; the units
    // whose compile-time lookups walked the lobby map are invalidated.
    uint64_t Before = VM.telemetry().Tier.Invalidations;
    ASSERT_TRUE(VM.load("mystery = ( 9 )", Err)) << M.Label << ": " << Err;
    EXPECT_GT(VM.telemetry().Tier.Invalidations, Before) << M.Label;

    // The dependent method recompiles and binds the new definition.
    ASSERT_TRUE(VM.evalInt("cur go", Out, Err)) << M.Label << ": " << Err;
    EXPECT_EQ(Out, 9) << M.Label;
    // And stays correct on the cached recompiled unit.
    ASSERT_TRUE(VM.evalInt("cur go", Out, Err)) << M.Label << ": " << Err;
    EXPECT_EQ(Out, 9) << M.Label;
  }
}

// Precision: mutating the lobby invalidates only functions whose lookups
// walked the lobby map. A method whose compiled body performed no lookups
// has an empty dependency set and survives.
TEST(Invalidation, OnlyDependentFunctionsInvalidated) {
  VirtualMachine VM(Policy::newSelf());
  std::string Err;
  ASSERT_TRUE(VM.load(
      "pureHost = ( | parent* = lobby. pureGo = ( 41 ) | ). "
      "depHost = ( | parent* = lobby. depGo = ( val ) | ). "
      "val = ( 7 ). cur <- 0",
      Err))
      << Err;
  int64_t Out = 0;
  ASSERT_TRUE(VM.evalInt("cur: pureHost. 0", Out, Err)) << Err;
  ASSERT_TRUE(VM.evalInt("cur pureGo", Out, Err)) << Err;
  EXPECT_EQ(Out, 41);
  ASSERT_TRUE(VM.evalInt("cur: depHost. 0", Out, Err)) << Err;
  ASSERT_TRUE(VM.evalInt("cur depGo", Out, Err)) << Err;
  EXPECT_EQ(Out, 7);

  // pureGo's body is a constant: no compile-time lookups, no dependencies.
  // depGo's body sends `val`, whose lookup walks depHost's map and then the
  // lobby map where it is found.
  const CompiledFunction *Pure = findNamed(VM, "pureGo");
  const CompiledFunction *Dep = findNamed(VM, "depGo");
  ASSERT_NE(Pure, nullptr);
  ASSERT_NE(Dep, nullptr);
  EXPECT_TRUE(Pure->DependsOnMaps.empty());
  EXPECT_FALSE(Dep->DependsOnMaps.empty());

  ASSERT_TRUE(VM.load("other = ( 5 )", Err)) << Err; // Lobby shape mutation.

  EXPECT_TRUE(Dep->Invalidated);
  EXPECT_FALSE(Pure->Invalidated);
  EXPECT_GE(VM.telemetry().Tier.Invalidations, 1u);

  // Both methods still compute correctly afterwards.
  ASSERT_TRUE(VM.evalInt("cur depGo", Out, Err)) << Err;
  EXPECT_EQ(Out, 7);
  ASSERT_TRUE(VM.evalInt("cur: pureHost. 0", Out, Err)) << Err;
  ASSERT_TRUE(VM.evalInt("cur pureGo", Out, Err)) << Err;
  EXPECT_EQ(Out, 41);
}

// Regression for the stats surface: totalCodeBytes()/functionCount() keep
// counting voided code (it stays allocated for in-flight activations), but
// the live/invalidated split must expose the distinction instead of
// reporting stale functions as healthy.
TEST(Invalidation, StatsDistinguishLiveFromInvalidated) {
  VirtualMachine VM(Policy::newSelf());
  std::string Err;
  ASSERT_TRUE(VM.load(
      "depHost = ( | parent* = lobby. depGo = ( val ) | ). "
      "val = ( 7 ). cur <- 0",
      Err))
      << Err;
  int64_t Out = 0;
  ASSERT_TRUE(VM.evalInt("cur: depHost. 0", Out, Err)) << Err;
  ASSERT_TRUE(VM.evalInt("cur depGo", Out, Err)) << Err;
  EXPECT_EQ(Out, 7);

  CodeManager &CM = VM.code();
  size_t FnsBefore = CM.functionCount();
  ASSERT_GT(FnsBefore, 0u);
  // Untiered and unmutated: every compiled function is live.
  EXPECT_EQ(CM.liveFunctionCount(), FnsBefore);
  EXPECT_EQ(CM.invalidatedFunctionCount(), 0u);
  EXPECT_EQ(CM.totalCodeBytes(), CM.liveCodeBytes());

  ASSERT_TRUE(VM.load("other = ( 5 )", Err)) << Err;

  // Nothing is freed, but the census now splits live from invalidated.
  EXPECT_EQ(CM.functionCount(), FnsBefore);
  size_t Invalidated = CM.invalidatedFunctionCount();
  EXPECT_GE(Invalidated, 1u);
  EXPECT_EQ(CM.liveFunctionCount(), FnsBefore - Invalidated);
  EXPECT_EQ(CM.totalCodeBytes(),
            CM.liveCodeBytes() + CM.invalidatedCodeBytes());
  EXPECT_LT(CM.liveCodeBytes(), CM.totalCodeBytes());

  TierStats S = VM.telemetry().Tier;
  EXPECT_EQ(S.LiveFunctions, CM.liveFunctionCount());
  EXPECT_EQ(S.InvalidatedFunctions, Invalidated);
  EXPECT_EQ(S.RetiredFunctions, 0u); // No promotions without tiering.
  EXPECT_EQ(S.LiveCodeBytes, CM.liveCodeBytes());
  EXPECT_EQ(S.InvalidatedCodeBytes, CM.invalidatedCodeBytes());
}

// GC stress: repeated compile → promote → invalidate cycles with an
// artificially tiny collection threshold. Invalidated functions must have
// dropped their dependency sets (so long-dead shapes are not retained by
// bookkeeping), and results stay correct across every round.
TEST(Invalidation, GcStressDependencySetsStayClean) {
  Policy P = Policy::newSelf();
  P.TieredCompilation = true;
  P.TierUpThreshold = 3;
  VirtualMachine VM(P);
  VM.heap().setGcThresholdBytes(1 << 12);
  std::string Err;
  ASSERT_TRUE(VM.load(
      "thing = ( | parent* = lobby. go = ( base + 1 ) | ). "
      "base = ( 1 ). cur <- 0. "
      "spin = ( | t <- 0. i <- 0 | [ i < 40 ] whileTrue: "
      "[ i: i + 1. t: t + (vectorOfSize: 4) size + cur go ]. t )",
      Err))
      << Err;
  int64_t Out = 0;
  ASSERT_TRUE(VM.evalInt("cur: thing. 0", Out, Err)) << Err;

  // Per iteration: vector size 4 + go's 2 = 6, over 40 iterations.
  const int64_t Expect = 40 * 6;
  for (int Round = 0; Round < 5; ++Round) {
    for (int Rep = 0; Rep < 2; ++Rep) { // Promotes at the back edge.
      ASSERT_TRUE(VM.evalInt("spin", Out, Err))
          << "round " << Round << ": " << Err;
      EXPECT_EQ(Out, Expect) << "round " << Round;
    }
    // Install any in-flight promotion so every round voids a freshly
    // promoted unit (background mode would otherwise cancel it pre-install,
    // which exercises a different path than this test is after).
    VM.settleBackgroundCompiles();
    // Mutate the lobby's shape: everything whose compile walked it —
    // including the freshly promoted spin unit — is voided.
    ASSERT_TRUE(VM.load("extra" + std::to_string(Round) + " = ( " +
                            std::to_string(Round) + " )",
                        Err))
        << Err;
  }
  VM.heap().collect();
  EXPECT_GT(VM.heap().collectionCount(), 0u);

  TierStats S = VM.telemetry().Tier;
  EXPECT_GE(S.Invalidations, 5u); // At least one unit per round.
  EXPECT_GE(S.Promotions, 1u);

  // Voided code keeps no dependency edges alive.
  size_t Checked = 0;
  VM.code().forEach([&](const CompiledFunction &F) {
    if (F.Invalidated) {
      ++Checked;
      EXPECT_TRUE(F.DependsOnMaps.empty());
      EXPECT_EQ(F.ReplacedBy, nullptr);
    }
  });
  EXPECT_GT(Checked, 0u);

  // And the world still computes the right answer.
  ASSERT_TRUE(VM.evalInt("spin", Out, Err)) << Err;
  EXPECT_EQ(Out, Expect);
}
