//===-- tests/interp/interp_test.cpp - End-to-end execution tests ----------===//
//
// These run full mini-SELF programs through the baseline (ST-80) pipeline:
// parse -> load -> lazy compile -> interpret.
//
//===----------------------------------------------------------------------===//

#include "driver/vm.h"

#include <gtest/gtest.h>

using namespace mself;

namespace {

class InterpTest : public ::testing::TestWithParam<const char *> {
protected:
  VirtualMachine VM{Policy::st80()};

  int64_t evalInt(const std::string &Src) {
    int64_t Out = 0;
    std::string Err;
    bool Ok = VM.evalInt(Src, Out, Err);
    EXPECT_TRUE(Ok) << Err << "  [source: " << Src << "]";
    return Out;
  }

  void loadOk(const std::string &Src) {
    std::string Err;
    ASSERT_TRUE(VM.load(Src, Err)) << Err;
  }
};

} // namespace

TEST_F(InterpTest, IntegerLiteral) { EXPECT_EQ(evalInt("42"), 42); }

TEST_F(InterpTest, Arithmetic) {
  EXPECT_EQ(evalInt("3 + 4"), 7);
  EXPECT_EQ(evalInt("10 - 3"), 7);
  EXPECT_EQ(evalInt("6 * 7"), 42);
  EXPECT_EQ(evalInt("15 / 2"), 7);
  EXPECT_EQ(evalInt("15 % 4"), 3);
  EXPECT_EQ(evalInt("2 + 3 * 4"), 20); // Smalltalk-style left-to-right.
}

TEST_F(InterpTest, Comparisons) {
  Interpreter::Outcome O = VM.eval("3 < 4");
  ASSERT_TRUE(O.Ok) << O.Message;
  EXPECT_EQ(O.Result, VM.world().trueValue());
  O = VM.eval("3 == 4");
  EXPECT_EQ(O.Result, VM.world().falseValue());
  O = VM.eval("3 != 4");
  EXPECT_EQ(O.Result, VM.world().trueValue());
}

TEST_F(InterpTest, BooleanControl) {
  EXPECT_EQ(evalInt("3 < 4 ifTrue: [ 1 ] False: [ 2 ]"), 1);
  EXPECT_EQ(evalInt("4 < 3 ifTrue: [ 1 ] False: [ 2 ]"), 2);
  EXPECT_EQ(evalInt("((3 < 4) and: [ 5 < 6 ]) ifTrue: [ 1 ] False: [ 0 ]"),
            1);
  EXPECT_EQ(evalInt("3 max: 9"), 9);
  EXPECT_EQ(evalInt("3 min: 9"), 3);
  EXPECT_EQ(evalInt("0 - 5 abs"), -5); // unary binds tighter: 0 - (5 abs)
  EXPECT_EQ(evalInt("(0 - 5) abs"), 5);
}

TEST_F(InterpTest, MethodsOnLobby) {
  loadOk("double: x = ( x + x )");
  EXPECT_EQ(evalInt("double: 21"), 42);
}

TEST_F(InterpTest, MethodsOnObjects) {
  loadOk("counter = ( | parent* = lobby. n <- 0. "
         "bump = ( n: n + 1. n ). get = ( n ) | )");
  EXPECT_EQ(evalInt("counter bump. counter bump. counter get"), 2);
}

TEST_F(InterpTest, CloneSeparatesState) {
  loadOk("proto = ( | parent* = lobby. n <- 0. bump = ( n: n + 1. n ) | )");
  EXPECT_EQ(evalInt("proto clone bump"), 1);
  EXPECT_EQ(evalInt("proto n"), 0);
}

TEST_F(InterpTest, WhileLoop) {
  EXPECT_EQ(
      evalInt("runSum = ( | s <- 0. i <- 0 | "
              "[ i < 10 ] whileTrue: [ s: s + i. i: i + 1 ]. s ). runSum"),
      45);
}

TEST_F(InterpTest, UserDefinedIteration) {
  EXPECT_EQ(evalInt("tri = ( | s <- 0 | 1 to: 10 Do: [ :i | s: s + i ]. s )."
                    " tri"),
            55);
  EXPECT_EQ(evalInt("u = ( | s <- 0 | 1 upTo: 10 Do: [ :i | s: s + i ]. s )."
                    " u"),
            45);
  EXPECT_EQ(evalInt("d = ( | s <- 0 | 10 downTo: 1 Do: [ :i | s: s + i ]. "
                    "s ). d"),
            55);
  EXPECT_EQ(evalInt("t = ( | c <- 0 | 5 timesRepeat: [ c: c + 1 ]. c ). t"),
            5);
}

TEST_F(InterpTest, RecursionAndArguments) {
  loadOk("fib: n = ( n < 2 ifTrue: [ n ] False: "
         "[ (fib: n - 1) + (fib: n - 2) ] )");
  EXPECT_EQ(evalInt("fib: 12"), 144);
}

TEST_F(InterpTest, NonLocalReturn) {
  loadOk("findFirstOver: lim = ( 1 to: 100 Do: [ :i | "
         "i * i > lim ifTrue: [ ^ i ] ]. 0 )");
  EXPECT_EQ(evalInt("findFirstOver: 50"), 8);
  EXPECT_EQ(evalInt("findFirstOver: 1000000"), 0);
}

TEST_F(InterpTest, Vectors) {
  EXPECT_EQ(evalInt("(vectorOfSize: 5) size"), 5);
  EXPECT_EQ(evalInt("v = ( | a | a: (vectorOfSize: 3). a at: 1 Put: 7. "
                    "a at: 1 ). v"),
            7);
  EXPECT_EQ(evalInt("w = ( | a. s <- 0 | a: (vectorOfSize: 4). "
                    "a atAllPut: 5. a do: [ :e | s: s + e ]. s ). w"),
            20);
}

TEST_F(InterpTest, PrimitiveFailureRunsHandler) {
  EXPECT_EQ(evalInt("3 _IntAdd: nil IfFail: [ 0 - 1 ]"), -1);
  EXPECT_EQ(evalInt("3 _IntAdd: 4 IfFail: [ 0 - 1 ]"), 7);
}

TEST_F(InterpTest, PrimitiveFailureWithoutHandlerIsError) {
  Interpreter::Outcome O = VM.eval("3 _IntDiv: 0");
  EXPECT_FALSE(O.Ok);
  EXPECT_NE(O.Message.find("division by zero"), std::string::npos);
}

TEST_F(InterpTest, DefaultFailureBlockReportsError) {
  Interpreter::Outcome O = VM.eval("3 / 0");
  EXPECT_FALSE(O.Ok);
  EXPECT_NE(O.Message.find("primitive failed"), std::string::npos);
}

TEST_F(InterpTest, MessageNotUnderstood) {
  Interpreter::Outcome O = VM.eval("3 fluxCapacitate");
  EXPECT_FALSE(O.Ok);
  EXPECT_NE(O.Message.find("not understood"), std::string::npos);
}

TEST_F(InterpTest, OverflowFailsIntoHandler) {
  loadOk("big = ( 1 )"); // placeholder so the file isn't empty
  EXPECT_EQ(evalInt("m = ( | x | x: 4611686018427387903. "
                    "x _IntAdd: 1 IfFail: [ 123 ] ). m"),
            123);
}

TEST_F(InterpTest, BlocksAsValues) {
  EXPECT_EQ(evalInt("applyTwice: b To: x = ( b value: (b value: x) ). "
                    "applyTwice: [ :v | v * 3 ] To: 2"),
            18);
}

TEST_F(InterpTest, LexicalCaptureSharedMutation) {
  EXPECT_EQ(evalInt("m = ( | x <- 0. inc | inc: [ x: x + 1 ]. "
                    "inc value. inc value. inc value. x ). m"),
            3);
}

TEST_F(InterpTest, GcDuringExecution) {
  // Collect very frequently: a tiny nursery forces scavenges mid-loop and
  // a tiny old-space threshold forces full collections as survivors tenure.
  Policy P = Policy::st80();
  P.GcNurseryKiB = 4;
  P.GcPromotionAge = 1;
  P.GcThresholdKiB = 4;
  VirtualMachine GcVM(P);
  int64_t Out = 0;
  std::string Err;
  ASSERT_TRUE(GcVM.evalInt("g = ( | s <- 0 | 1 to: 200 Do: [ :i | "
                           "s: s + ((vectorOfSize: 3) size) ]. s ). g",
                           Out, Err))
      << Err;
  EXPECT_EQ(Out, 600);
  EXPECT_GT(GcVM.heap().collectionCount(), 0u);
}

TEST_F(InterpTest, InlineCachesHit) {
  loadOk("sq: x = ( x * x )");
  EXPECT_EQ(evalInt("r = ( | s <- 0 | 1 to: 50 Do: [ :i | s: s + (sq: i) ]."
                    " s ). r"),
            42925);
  const ExecCounters &C = VM.interp().counters();
  EXPECT_GT(C.IcHits, C.IcMisses);
}

TEST_F(InterpTest, StepBudgetAborts) {
  VM.interp().setStepBudget(1000);
  Interpreter::Outcome O = VM.eval("spin = ( [ true ] whileTrue: [ ]. 0 ). "
                                   "spin");
  EXPECT_FALSE(O.Ok);
  EXPECT_NE(O.Message.find("budget"), std::string::npos);
}
