//===-- tests/interp/megamorphic_test.cpp - Megamorphic dispatch path ------===//
//
// Drives one send site through the full PIC state progression — Empty →
// Monomorphic → Polymorphic → Megamorphic — with twelve distinct receiver
// kinds, and pins the megamorphic regime's contract: the transition
// counters fire in order, megamorphic sends dominate the site, and misses
// fall back to the global lookup cache (not full parent walks). The same
// battery runs under the quickened/threaded/fused engine and the plain
// switch-loop engine: the dispatch state machine must behave identically
// in both.
//
//===----------------------------------------------------------------------===//

#include "driver/vm.h"

#include <gtest/gtest.h>

#include <string>

using namespace mself;

namespace {

constexpr int kKinds = 12; // > default PicArity (4): site must go mega.

/// Twelve receiver kinds (each its own map), a vector of one of each, and
/// a driver cycling all of them through a single `tag` send site.
std::string shapeWorld() {
  std::string S;
  for (int I = 0; I < kKinds; ++I) {
    std::string Id = std::to_string(I);
    S += "m" + Id + " = ( | parent* = lobby. tag = ( " +
         std::to_string(I + 1) + " ) | ). ";
  }
  S += "mkShapes = ( | v | v: (vectorOfSize: " + std::to_string(kKinds) +
       "). ";
  for (int I = 0; I < kKinds; ++I)
    S += "v at: " + std::to_string(I) + " Put: m" + std::to_string(I) + ". ";
  S += "v ). ";
  S += "drive: n = ( | v. t <- 0 | v: mkShapes. "
       "1 to: n Do: [ :i | t: t + (v at: i % " +
       std::to_string(kKinds) + ") tag ]. t )";
  return S;
}

int64_t expectedSum(int64_t N) {
  int64_t T = 0;
  for (int64_t I = 1; I <= N; ++I)
    T += (I % kKinds) + 1;
  return T;
}

/// ST-80 base (sends stay dynamically bound, so the counters observe the
/// real dispatch path) with the full cache stack; \p Quickened toggles the
/// engine axis between quickened/threaded/fused and the plain switch loop.
Policy enginePolicy(bool Quickened) {
  Policy P = Policy::st80();
  P.InlineCaches = true;
  P.PolymorphicInlineCaches = true;
  P.PicArity = 4;
  P.UseGlobalLookupCache = true;
  // The GLC indexes on raw map/selector addresses, so collision patterns
  // vary run to run with address layout; a roomy table keeps the hot
  // (map, selector) pairs collision-free so the hit-rate assertions below
  // measure the state machine, not the dice.
  P.GlobalLookupCacheEntries = 1 << 14;
  P.ThreadedDispatch = Quickened;
  P.OpcodeQuickening = Quickened;
  P.Superinstructions = Quickened;
  return P;
}

class MegamorphicEngines : public ::testing::TestWithParam<bool> {};

} // namespace

TEST_P(MegamorphicEngines, TransitionChainAndGlcFallback) {
  VirtualMachine VM(enginePolicy(GetParam()));
  std::string Err;
  ASSERT_TRUE(VM.load(shapeWorld(), Err)) << Err;
  int64_t Out = 0;
  ASSERT_TRUE(VM.evalInt("drive: 600", Out, Err)) << Err;
  EXPECT_EQ(Out, expectedSum(600));

  DispatchStats S = VM.telemetry().Dispatch;
  // The site walked the whole state machine: one receiver (mono), then a
  // second (poly), then past the PIC arity (mega).
  EXPECT_GE(S.MonoToPoly, 1u);
  EXPECT_GE(S.ToMegamorphic, 1u);
  EXPECT_GT(S.SendsMono, 0u);
  EXPECT_GT(S.SendsPoly, 0u);
  EXPECT_GT(S.SendsMega, 0u);
  EXPECT_GE(S.SitesMega, 1u);
  // With 600 sends spread over 12 kinds and arity 4, the site spends
  // almost its whole lifetime megamorphic: everything past the handful of
  // PIC-filling sends. (SendsMono/SendsPoly stay large overall — the loop
  // scaffolding's at:/+/% sites are monomorphic — so compare against the
  // driven site's own send count, not the program total.)
  EXPECT_GE(S.SendsMega, 600 - 16);

  // Megamorphic sends bypass the PIC and land on the global lookup cache;
  // after 12 cold fills the cache serves every repeat, so the fallback
  // path is nearly all hits and full parent walks stay rare.
  EXPECT_GT(S.GlcHits, 0u);
  ASSERT_GT(S.GlcHits + S.GlcMisses, 0u);
  double GlcHitRate = double(S.GlcHits) / double(S.GlcHits + S.GlcMisses);
  EXPECT_GT(GlcHitRate, 0.75);
  EXPECT_LT(S.FullLookups, S.Sends / 4);
}

TEST(MegamorphicEngines, EnginesAgreeOnResultAndSiteState) {
  int64_t Results[2];
  uint64_t Mega[2];
  for (int E = 0; E < 2; ++E) {
    VirtualMachine VM(enginePolicy(E == 1));
    std::string Err;
    ASSERT_TRUE(VM.load(shapeWorld(), Err)) << Err;
    ASSERT_TRUE(VM.evalInt("drive: 600", Results[E], Err)) << Err;
    Mega[E] = VM.telemetry().Dispatch.SendsMega;
  }
  // The engine axis changes how bytecode executes, never what it computes
  // — nor how the dispatch state machine classifies the site.
  EXPECT_EQ(Results[0], Results[1]);
  EXPECT_EQ(Mega[0], Mega[1]);
}

INSTANTIATE_TEST_SUITE_P(Engines, MegamorphicEngines,
                         ::testing::Values(false, true),
                         [](const ::testing::TestParamInfo<bool> &Info) {
                           return Info.param ? "quickened" : "plainloop";
                         });
