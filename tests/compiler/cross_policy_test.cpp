//===-- tests/compiler/cross_policy_test.cpp - Policy equivalence ----------===//
//
// The strongest correctness property in the system: every compiler
// configuration must compute identical results. Each program below runs
// through the differential harness — ST-80 / old SELF / new SELF crossed
// with every dispatch-cache configuration (PIC, monomorphic, no global
// cache, no caches = pure interpretation) — and the outcomes are compared.
//
//===----------------------------------------------------------------------===//

#include "harness/differential.h"

#include <gtest/gtest.h>

using namespace mself;

namespace {

struct ProgramCase {
  const char *Name;
  const char *Defs; ///< Loaded first (may be "").
  const char *Expr; ///< Evaluated; must yield an integer.
  int64_t Expected;
};

const ProgramCase kPrograms[] = {
    {"literal", "", "42", 42},
    {"arith", "", "2 + 3 * 4 - 5", 15},
    {"divmod", "", "(17 / 5) * 100 + (17 % 5)", 302},
    {"compare", "", "(3 < 4) asBit + (4 <= 4) asBit + (5 > 9) asBit", 2},
    {"ifTrueFalse", "", "3 < 4 ifTrue: [ 10 ] False: [ 20 ]", 10},
    {"nestedIf", "",
     "1 < 2 ifTrue: [ 3 < 2 ifTrue: [ 1 ] False: [ 2 ] ] False: [ 3 ]", 2},
    {"minMaxAbs", "", "((0 - 7) abs max: 3) min: 6", 6},
    {"whileSum",
     "sumUpTo: n = ( | s <- 0. i <- 1 | "
     "[ i <= n ] whileTrue: [ s: s + i. i: i + 1 ]. s )",
     "sumUpTo: 100", 5050},
    {"triangleNumber",
     "triangleNumber: n = ( | sum <- 0 | "
     "1 upTo: n Do: [ :i | sum: sum + i ]. sum )",
     "triangleNumber: 100", 4950},
    {"toDo",
     "squaresTo: n = ( | s <- 0 | 1 to: n Do: [ :i | s: s + (i * i) ]. s )",
     "squaresTo: 10", 385},
    {"downTo", "", "down = ( | s <- 0 | 9 downTo: 3 Do: [ :i | s: s + i ]. "
                   "s ). down",
     42},
    {"byDo", "", "byd = ( | s <- 0 | 1 to: 20 By: 3 Do: [ :i | s: s + i ]. "
                 "s ). byd",
     70},
    {"timesRepeat", "", "tr = ( | c <- 0 | 7 timesRepeat: [ c: c + 2 ]. c )."
                        " tr",
     14},
    {"recursion",
     "fib: n = ( n < 2 ifTrue: [ n ] False: "
     "[ (fib: n - 1) + (fib: n - 2) ] )",
     "fib: 15", 610},
    {"mutualRecursion",
     "isEven: n = ( n == 0 ifTrue: [ 1 ] False: [ isOdd: n - 1 ] ). "
     "isOdd: n = ( n == 0 ifTrue: [ 0 ] False: [ isEven: n - 1 ] )",
     "isEven: 10", 1},
    {"nonLocalReturn",
     "firstSquareOver: lim = ( 1 to: 100 Do: [ :i | "
     "i * i > lim ifTrue: [ ^ i ] ]. 0 )",
     "firstSquareOver: 200", 15},
    {"objects",
     "counter = ( | parent* = lobby. n <- 0. "
     "bump = ( n: n + 1. n ). reset = ( n: 0. self ) | )",
     "counter reset. counter bump. counter bump. counter bump. counter n",
     3},
    {"clones",
     "pt = ( | parent* = lobby. x <- 1. y <- 2. "
     "sum = ( x + y ). withX: v = ( | c | c: self clone. c x: v. c ) | )",
     "(pt withX: 10) sum + pt sum", 15},
    {"vectors",
     "fill: n = ( | v. s <- 0 | v: (vectorOfSize: n). "
     "0 upTo: n Do: [ :i | v at: i Put: i * 2 ]. "
     "v do: [ :e | s: s + e ]. s )",
     "fill: 10", 90},
    {"atAllPut",
     "aap = ( | v. s <- 0 | v: (vectorOfSize: 8). v atAllPut: 3. "
     "v do: [ :e | s: s + e ]. s )",
     "aap", 24},
    {"primFail", "", "3 _IntAdd: nil IfFail: [ 0 - 9 ]", -9},
    {"primFailConstFold", "",
     "m = ( | x | x: 4611686018427387903. x _IntAdd: 1 IfFail: [ 77 ] ). m",
     77},
    {"blockValues",
     "applyTwice: b To: x = ( b value: (b value: x) )",
     "applyTwice: [ :v | v * 3 ] To: 2", 18},
    {"capture",
     "mkAdder: n = ( [ :x | x + n ] )",
     "(mkAdder: 10) value: 32", 42},
    {"sharedEnv", "",
     "se = ( | x <- 0. up. down | up: [ x: x + 10 ]. down: [ x: x - 3 ]. "
     "up value. down value. up value. x ). se",
     17},
    {"nestedLoops",
     "grid = ( | t <- 0 | 1 to: 5 Do: [ :i | 1 to: 5 Do: [ :j | "
     "t: t + (i * j) ] ]. t )",
     "grid", 225},
    {"whileFalse", "",
     "wf = ( | i <- 0 | [ i >= 5 ] whileFalse: [ i: i + 1 ]. i ). wf", 5},
    {"booleanOps", "",
     "((3 < 4) and: [ 4 < 5 ]) asBit + ((3 < 4) or: [ 9 < 5 ]) asBit "
     "+ (3 < 4) not asBit",
     2},
    {"polymorphicSend",
     "shapeA = ( | parent* = lobby. area = ( 10 ) | ). "
     "shapeB = ( | parent* = lobby. area = ( 20 ) | ). "
     "sumAreas = ( | t <- 0. s | 1 to: 10 Do: [ :i | "
     "s: (i even ifTrue: [ shapeA ] False: [ shapeB ]). "
     "t: t + s area ]. t )",
     "sumAreas", 150},
    {"identity",
     "idt = ( | a. b | a: (vectorOfSize: 1). b: a. "
     "((a == b) asBit * 10) + (a == (vectorOfSize: 1)) asBit )",
     "idt", 10},
    {"deepInline",
     "l1: x = ( x + 1 ). l2: x = ( (l1: x) + 1 ). l3: x = ( (l2: x) + 1 ). "
     "l4: x = ( (l3: x) + 1 )",
     "l4: 0", 4},
    {"argReassign",
     "count: n = ( | c <- 0 | [ n > 0 ] whileTrue: [ c: c + 1. n: n - 1 ]. "
     "c )",
     "count: 7", 7},
    {"sumFromTo",
     "sumFrom: a To: b = ( | s <- 0 | a to: b Do: [ :i | s: s + i ]. s )",
     "sumFrom: 10 To: 20", 165},
    {"overflowIntoHandlerLoop",
     "ovf = ( | x <- 1. n <- 0 | [ n < 100 ] whileTrue: [ "
     "x: (x _IntMul: 2 IfFail: [ 1 ]). n: n + 1 ]. x )",
     "ovf", 274877906944 /* overflow resets x to 1 every 62 doublings;
                            after 100 iterations x == 2^38 */},
};

class CrossPolicy : public ::testing::TestWithParam<ProgramCase> {};

} // namespace

TEST_P(CrossPolicy, SameResultUnderAllPolicies) {
  const ProgramCase &C = GetParam();
  EXPECT_TRUE(difftest::expectAll(C.Defs, C.Expr, C.Expected));
}

INSTANTIATE_TEST_SUITE_P(Programs, CrossPolicy,
                         ::testing::ValuesIn(kPrograms),
                         [](const ::testing::TestParamInfo<ProgramCase> &I) {
                           return std::string(I.param.Name);
                         });
