//===-- tests/compiler/random_expr_test.cpp - Differential fuzzing ----------===//
//
// Property-based differential test: generate random integer/boolean
// expression trees, render them as mini-SELF source, evaluate the tree in
// C++, and require every (compiler policy × dispatch cache) configuration
// to produce the same value. This exercises constant folding, range
// analysis, splitting of the comparison-produced boolean merges, prediction
// on arbitrary shapes, and the PIC/global-cache dispatch layers.
//
//===----------------------------------------------------------------------===//

#include "harness/differential.h"

#include <gtest/gtest.h>

#include <random>
#include <sstream>

using namespace mself;

namespace {

/// Deterministic generator of (source, expected value) pairs. Division and
/// modulo guard against zero divisors by construction; operands stay small
/// so nothing overflows.
class ExprGen {
public:
  explicit ExprGen(uint32_t Seed) : Rng(Seed) {}

  /// Generates an integer-valued expression of depth <= D.
  std::string intExpr(int D, int64_t &Val) {
    if (D == 0 || pick(4) == 0) {
      int64_t V = static_cast<int64_t>(pick(200)) - 100;
      Val = V;
      if (V < 0) {
        int64_t Out = 0;
        std::string S = "(0 - " + std::to_string(-V) + ")";
        Out = V;
        Val = Out;
        return S;
      }
      return std::to_string(V);
    }
    switch (pick(6)) {
    case 0: {
      int64_t A, B;
      std::string SA = intExpr(D - 1, A), SB = intExpr(D - 1, B);
      Val = A + B;
      return "(" + SA + " + " + SB + ")";
    }
    case 1: {
      int64_t A, B;
      std::string SA = intExpr(D - 1, A), SB = intExpr(D - 1, B);
      Val = A - B;
      return "(" + SA + " - " + SB + ")";
    }
    case 2: {
      int64_t A, B;
      std::string SA = intExpr(D - 1, A), SB = intExpr(D - 1, B);
      Val = A * B;
      return "(" + SA + " * " + SB + ")";
    }
    case 3: { // Division with a guaranteed-nonzero divisor.
      int64_t A;
      std::string SA = intExpr(D - 1, A);
      int64_t B = static_cast<int64_t>(pick(20)) + 1;
      Val = A / B;
      return "(" + SA + " / " + std::to_string(B) + ")";
    }
    case 4: { // Conditional expression on a random comparison.
      int64_t C;
      std::string SC = boolExpr(D - 1, C);
      int64_t A, B;
      std::string SA = intExpr(D - 1, A), SB = intExpr(D - 1, B);
      Val = C ? A : B;
      return "(" + SC + " ifTrue: [ " + SA + " ] False: [ " + SB + " ])";
    }
    default: { // min:/max:/abs exercise the core library.
      int64_t A, B;
      std::string SA = intExpr(D - 1, A), SB = intExpr(D - 1, B);
      if (pick(2) == 0) {
        Val = std::min(A, B);
        return "(" + SA + " min: " + SB + ")";
      }
      Val = std::max(A, B);
      return "(" + SA + " max: " + SB + ")";
    }
    }
  }

  /// Generates a boolean-valued expression; Val is 0 or 1.
  std::string boolExpr(int D, int64_t &Val) {
    if (D == 0 || pick(3) == 0) {
      int64_t A, B;
      std::string SA = intExpr(std::max(0, D - 1), A);
      std::string SB = intExpr(std::max(0, D - 1), B);
      const char *Ops[] = {"<", "<=", ">", ">=", "==", "!="};
      int O = static_cast<int>(pick(6));
      bool R = false;
      switch (O) {
      case 0:
        R = A < B;
        break;
      case 1:
        R = A <= B;
        break;
      case 2:
        R = A > B;
        break;
      case 3:
        R = A >= B;
        break;
      case 4:
        R = A == B;
        break;
      default:
        R = A != B;
        break;
      }
      Val = R ? 1 : 0;
      return "(" + SA + " " + Ops[O] + " " + SB + ")";
    }
    switch (pick(3)) {
    case 0: {
      int64_t A, B;
      std::string SA = boolExpr(D - 1, A), SB = boolExpr(D - 1, B);
      Val = (A != 0 && B != 0) ? 1 : 0;
      return "(" + SA + " and: [ " + SB + " ])";
    }
    case 1: {
      int64_t A, B;
      std::string SA = boolExpr(D - 1, A), SB = boolExpr(D - 1, B);
      Val = (A != 0 || B != 0) ? 1 : 0;
      return "(" + SA + " or: [ " + SB + " ])";
    }
    default: {
      int64_t A;
      std::string SA = boolExpr(D - 1, A);
      Val = A != 0 ? 0 : 1;
      return SA + " not";
    }
    }
  }

private:
  uint32_t pick(uint32_t N) { return Rng() % N; }
  std::mt19937 Rng;
};

class RandomExpr : public ::testing::TestWithParam<int> {};

} // namespace

TEST_P(RandomExpr, AllPoliciesMatchCppEvaluation) {
  ExprGen Gen(static_cast<uint32_t>(GetParam()) * 2654435761u + 1);
  for (int Case = 0; Case < 8; ++Case) {
    int64_t Expected = 0;
    std::string Src = Gen.intExpr(4, Expected);
    ASSERT_TRUE(difftest::expectAll("", Src, Expected));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomExpr, ::testing::Range(1, 13));
