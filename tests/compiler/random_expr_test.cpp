//===-- tests/compiler/random_expr_test.cpp - Differential fuzzing ----------===//
//
// Property-based differential test: generate random integer/boolean/string
// expression trees — including string concatenation/slicing/indexing and
// vector builds folded through collection sends — render them as mini-SELF
// source, evaluate the tree in C++, and require every (compiler policy ×
// dispatch cache) configuration to produce the same value. This exercises
// constant folding, range analysis, splitting of the comparison-produced
// boolean merges, prediction on arbitrary shapes, the string primitives,
// block-local closures, and the PIC/global-cache dispatch layers.
//
//===----------------------------------------------------------------------===//

#include "harness/differential.h"

#include <gtest/gtest.h>

#include <random>
#include <sstream>

using namespace mself;

namespace {

/// Deterministic generator of (source, expected value) pairs. Division and
/// modulo guard against zero divisors by construction; operands stay small
/// so nothing overflows.
class ExprGen {
public:
  explicit ExprGen(uint32_t Seed) : Rng(Seed) {}

  /// Generates an integer-valued expression of depth <= D.
  std::string intExpr(int D, int64_t &Val) {
    if (D == 0 || pick(4) == 0) {
      int64_t V = static_cast<int64_t>(pick(200)) - 100;
      Val = V;
      if (V < 0) {
        int64_t Out = 0;
        std::string S = "(0 - " + std::to_string(-V) + ")";
        Out = V;
        Val = Out;
        return S;
      }
      return std::to_string(V);
    }
    switch (pick(10)) {
    case 0: {
      int64_t A, B;
      std::string SA = intExpr(D - 1, A), SB = intExpr(D - 1, B);
      Val = A + B;
      return "(" + SA + " + " + SB + ")";
    }
    case 1: {
      int64_t A, B;
      std::string SA = intExpr(D - 1, A), SB = intExpr(D - 1, B);
      Val = A - B;
      return "(" + SA + " - " + SB + ")";
    }
    case 2: {
      int64_t A, B;
      std::string SA = intExpr(D - 1, A), SB = intExpr(D - 1, B);
      Val = A * B;
      return "(" + SA + " * " + SB + ")";
    }
    case 3: { // Division with a guaranteed-nonzero divisor.
      int64_t A;
      std::string SA = intExpr(D - 1, A);
      int64_t B = static_cast<int64_t>(pick(20)) + 1;
      Val = A / B;
      return "(" + SA + " / " + std::to_string(B) + ")";
    }
    case 4: { // Conditional expression on a random comparison.
      int64_t C;
      std::string SC = boolExpr(D - 1, C);
      int64_t A, B;
      std::string SA = intExpr(D - 1, A), SB = intExpr(D - 1, B);
      Val = C ? A : B;
      return "(" + SC + " ifTrue: [ " + SA + " ] False: [ " + SB + " ])";
    }
    case 5: { // min:/max:/abs exercise the core library.
      int64_t A, B;
      std::string SA = intExpr(D - 1, A), SB = intExpr(D - 1, B);
      if (pick(2) == 0) {
        Val = std::min(A, B);
        return "(" + SA + " min: " + SB + ")";
      }
      Val = std::max(A, B);
      return "(" + SA + " max: " + SB + ")";
    }
    case 6: { // String size / byte-indexing on a random string tree.
      std::string SV;
      std::string SS = strExpr(D - 1, SV);
      if (pick(2) == 0) {
        Val = static_cast<int64_t>(SV.size());
        return "(" + SS + " size)";
      }
      size_t K = pick(static_cast<uint32_t>(SV.size()));
      Val = static_cast<int64_t>(static_cast<unsigned char>(SV[K]));
      return "(" + SS + " at: " + std::to_string(K) + ")";
    }
    case 7: { // Vector build + fold: at:Put:, do:, size, first, last.
      int K = 2 + static_cast<int>(pick(3));
      std::string S = "([ | v. t <- 0 | v: (vectorOfSize: " +
                      std::to_string(K) + "). ";
      int64_t Sum = 0, First = 0, Last = 0;
      for (int I = 0; I < K; ++I) {
        int64_t E;
        std::string SE = intExpr(std::max(0, D - 2), E);
        S += "v at: " + std::to_string(I) + " Put: " + SE + ". ";
        Sum += E;
        if (I == 0)
          First = E;
        Last = E;
      }
      S += "v do: [ :e | t: t + e ]. ((t + (v size)) + ((v first) - "
           "(v last))) ] value)";
      Val = Sum + K + First - Last;
      return S;
    }
    case 9: { // Blocks stored into a vector and an env slot, then invoked.
      // Stored closures are the Escaping corner of the lattice: they must
      // survive the storing frame, and each loop iteration's block must
      // capture its own binding of i (fresh environment per activation),
      // under every policy — arena, heap, and noescape alike.
      int K = 2 + static_cast<int>(pick(3));
      int64_t A;
      std::string SA = intExpr(std::max(0, D - 2), A);
      int64_t M2 = 1 + pick(6);
      // v at: i holds [ :x | (x * m) + i ]; b holds [ :x | x + a ].
      int64_t T = 0;
      for (int I = 0; I < K; ++I)
        T += A * M2 + I;
      Val = T + (A + A);
      return "([ | v. b. t <- 0 | v: (vectorOfSize: " + std::to_string(K) +
             "). b: [ :x | x + " + SA + " ]. 0 upTo: " + std::to_string(K) +
             " Do: [ :i | v at: i Put: [ :x | (x * " + std::to_string(M2) +
             ") + i ] ]. 0 upTo: " + std::to_string(K) +
             " Do: [ :i | t: t + ((v at: i) value: " + SA +
             ") ]. t + (b value: " + SA + ") ] value)";
    }
    case 8: { // Tenured-store churn: a retained vector of boxes, each
      // round replacing every box with a fresh one. Under the GC stress
      // environment the retained vector and the previous round's boxes
      // are tenured, so every at:Put: deletes an old-space reference —
      // the deletion pattern the SATB barrier must log when an
      // incremental mark cycle is active (MINISELF_GC_CONCURRENT=1) —
      // while the dropped boxes become floating or snapshot garbage.
      int K = 2 + static_cast<int>(pick(3));
      int R = 3 + static_cast<int>(pick(4));
      int64_t Seed;
      std::string SE = intExpr(std::max(0, D - 2), Seed);
      // After the last round, slot i holds Seed + (R-1)*K + i.
      Val = static_cast<int64_t>(K) * (Seed + static_cast<int64_t>(R - 1) * K) +
            static_cast<int64_t>(K) * (K - 1) / 2;
      return "([ | v. t <- 0 | v: (vectorOfSize: " + std::to_string(K) +
             "). 0 upTo: " + std::to_string(R) +
             " Do: [ :r | 0 upTo: " + std::to_string(K) +
             " Do: [ :i | v at: i Put: (vectorOfSize: 1). "
             "(v at: i) at: 0 Put: ((" + SE + " + (r * " + std::to_string(K) +
             ")) + i) ] ]. 0 upTo: " + std::to_string(K) +
             " Do: [ :i | t: t + ((v at: i) at: 0) ]. t ] value)";
    }
    default: { // atAllPut: seed, doIndexes: rewrite, do: fold.
      int K = 2 + static_cast<int>(pick(4));
      int64_t Seed;
      std::string SE = intExpr(std::max(0, D - 2), Seed);
      // Each slot becomes Seed + i, so the fold is K*Seed + K*(K-1)/2.
      Val = static_cast<int64_t>(K) * Seed +
            static_cast<int64_t>(K) * (K - 1) / 2;
      return "([ | v. t <- 0 | v: (vectorOfSize: " + std::to_string(K) +
             "). v atAllPut: " + SE +
             ". v doIndexes: [ :i | v at: i Put: ((v at: i) + i) ]. "
             "v do: [ :e | t: t + e ]. t ] value)";
    }
    }
  }

  /// Generates a whole-program expression whose loop exits through a
  /// non-local return (or, when J lands on K, falls through normally). A
  /// `^` anywhere aborts the entire doit — its value becomes the program's
  /// value, skipping whatever would have wrapped it — so this production
  /// is only sound at the top of the tree, never as a subexpression. The
  /// escape-analysis lowering arena-allocates the loop's block frames, so
  /// the NLR must unwind arena marks on its way out.
  std::string nlrExpr(int D, int64_t &Val) {
    int K = 3 + static_cast<int>(pick(5));
    int J = static_cast<int>(pick(static_cast<uint32_t>(K) + 1));
    int64_t Seed;
    std::string SE = intExpr(std::max(0, D - 1), Seed);
    int64_t M2 = 1 + pick(5);
    int64_t T = 0;
    bool Cut = false;
    for (int I = 0; I < K && !Cut; ++I) {
      T += Seed + I * M2;
      Cut = I == J;
    }
    Val = Cut ? T : -T;
    return "([ | i <- 0. t <- 0 | [ i < " + std::to_string(K) +
           " ] whileTrue: [ t: t + (" + SE + " + (i * " +
           std::to_string(M2) + ")). (i == " + std::to_string(J) +
           ") ifTrue: [ ^ t ]. i: i + 1 ]. (0 - t) ] value)";
  }

  /// Shape-transition churn: clones of a two-slot prototype take int
  /// stores (recording Int slot tags and, under the BBV tier, compiling
  /// field loads down to guarded one-word cell reads), then a string lands
  /// in one of the same slots every third round — the tag conflict that
  /// must flip every dependent guard cell — before an int store restores
  /// it. Fresh clones every fourth round keep young objects of the same
  /// shape appearing throughout. Under the GC-stress and background-
  /// compilation rows of the matrix the conflicting stores race promotion
  /// and collection, which is exactly the surface the slot-tag
  /// invalidation hook has to keep coherent. Only sound at the top of the
  /// tree: it emits definitions through \p Defs.
  std::string shapeExpr(int D, std::string &Defs, int64_t &Val) {
    int R = 5 + static_cast<int>(pick(8));
    int64_t M2 = 1 + pick(6);
    int64_t C = pick(10);
    int64_t Seed;
    std::string SE = intExpr(std::max(0, D - 2), Seed);
    Defs = "fzShape = ( | parent* = lobby. f <- 0. g <- 0.\n"
           "  sumfg = ( f + g ).\n"
           "  gbump = ( g: g + 1. self ) | ).\n";
    int64_t F = 0, G = 0, T = 0, PG = 0;
    for (int64_t I = 0; I < R; ++I) {
      if (I % 4 == 0)
        PG = 0; // fresh clone: g restarts at the prototype's 0
      F = I + Seed;
      G = I * M2;
      T += F + G;         // sumfg through the guarded loads
      T += I % 3 == 0 ? 0 // conflict round: a string sits in f
                      : F;
      F = I + C; // restore the slot to ints for the next round
      T += PG;   // the second clone's sumfg (its f stays 0)
      PG += 1;
    }
    (void)F;
    (void)G;
    Val = T;
    return "([ | o. p. t <- 0. r |\n"
           "  o: fzShape clone. p: fzShape clone.\n"
           "  0 upTo: " + std::to_string(R) + " Do: [ :i |\n"
           "    (i % 4) == 0 ifTrue: [ p: fzShape clone ].\n"
           "    o f: i + (" + SE + "). o g: i * " + std::to_string(M2) +
           ".\n"
           "    t: t + o sumfg.\n"
           "    (i % 3) == 0 ifTrue: [ o f: 'conflict'. r: 0 ]\n"
           "      False: [ r: o f ].\n"
           "    t: t + r.\n"
           "    o f: i + " + std::to_string(C) + ".\n"
           "    t: t + p sumfg.\n"
           "    p gbump ].\n"
           "  t ] value)";
  }

  /// Generates a string-valued expression; Val tracks its C++ value. The
  /// result is never empty (leaves are non-empty and slices keep at least
  /// one character), so callers may index it.
  std::string strExpr(int D, std::string &Val) {
    if (D <= 0 || pick(3) == 0) {
      size_t Len = 1 + pick(5);
      Val.clear();
      for (size_t I = 0; I < Len; ++I)
        Val += static_cast<char>('a' + pick(26));
      return "'" + Val + "'";
    }
    if (pick(2) == 0) { // Concatenation.
      std::string VA, VB;
      std::string SA = strExpr(D - 1, VA), SB = strExpr(D - 1, VB);
      Val = VA + VB;
      return "(" + SA + " , " + SB + ")";
    }
    // Non-empty slice; copyFrom:To: has an exclusive upper bound.
    std::string VA;
    std::string SA = strExpr(D - 1, VA);
    size_t From = pick(static_cast<uint32_t>(VA.size()));
    size_t To = From + 1 + pick(static_cast<uint32_t>(VA.size() - From));
    Val = VA.substr(From, To - From);
    return "(" + SA + " copyFrom: " + std::to_string(From) +
           " To: " + std::to_string(To) + ")";
  }

  /// Generates a boolean-valued expression; Val is 0 or 1.
  std::string boolExpr(int D, int64_t &Val) {
    if (D == 0 || pick(3) == 0) {
      int64_t A, B;
      std::string SA = intExpr(std::max(0, D - 1), A);
      std::string SB = intExpr(std::max(0, D - 1), B);
      const char *Ops[] = {"<", "<=", ">", ">=", "==", "!="};
      int O = static_cast<int>(pick(6));
      bool R = false;
      switch (O) {
      case 0:
        R = A < B;
        break;
      case 1:
        R = A <= B;
        break;
      case 2:
        R = A > B;
        break;
      case 3:
        R = A >= B;
        break;
      case 4:
        R = A == B;
        break;
      default:
        R = A != B;
        break;
      }
      Val = R ? 1 : 0;
      return "(" + SA + " " + Ops[O] + " " + SB + ")";
    }
    switch (pick(4)) {
    case 0: {
      int64_t A, B;
      std::string SA = boolExpr(D - 1, A), SB = boolExpr(D - 1, B);
      Val = (A != 0 && B != 0) ? 1 : 0;
      return "(" + SA + " and: [ " + SB + " ])";
    }
    case 2: { // String comparison; half the time compare a tree to itself.
      std::string VA, VB;
      std::string SA = strExpr(1, VA);
      if (pick(2) == 0) {
        Val = 1;
        return "(" + SA + " sameAs: " + SA + ")";
      }
      std::string SB = strExpr(1, VB);
      Val = (VA == VB) ? 1 : 0;
      return "(" + SA + " sameAs: " + SB + ")";
    }
    case 1: {
      int64_t A, B;
      std::string SA = boolExpr(D - 1, A), SB = boolExpr(D - 1, B);
      Val = (A != 0 || B != 0) ? 1 : 0;
      return "(" + SA + " or: [ " + SB + " ])";
    }
    default: {
      int64_t A;
      std::string SA = boolExpr(D - 1, A);
      Val = A != 0 ? 0 : 1;
      return SA + " not";
    }
    }
  }

private:
  uint32_t pick(uint32_t N) { return Rng() % N; }
  std::mt19937 Rng;
};

class RandomExpr : public ::testing::TestWithParam<int> {};

} // namespace

TEST_P(RandomExpr, AllPoliciesMatchCppEvaluation) {
  ExprGen Gen(static_cast<uint32_t>(GetParam()) * 2654435761u + 1);
  for (int Case = 0; Case < 8; ++Case) {
    int64_t Expected = 0;
    std::string Defs;
    std::string Src;
    // Rotate whole-program productions: non-local returns, slot-tag
    // transition churn, and composable integer trees (which include the
    // stored-block shapes).
    if (Case % 3 == 2)
      Src = Gen.nlrExpr(3, Expected);
    else if (Case % 3 == 1)
      Src = Gen.shapeExpr(3, Defs, Expected);
    else
      Src = Gen.intExpr(4, Expected);
    ASSERT_TRUE(difftest::expectAll(Defs, Src, Expected));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomExpr, ::testing::Range(1, 13));
