//===-- tests/compiler/ablation_test.cpp - Ablation policy correctness ------===//
//
// Every ablation configuration (DESIGN.md §5) must still compute correct
// results: disabling an optimization may never change semantics. Runs a
// program battery under each single-flag ablation of new SELF.
//
//===----------------------------------------------------------------------===//

#include "driver/vm.h"

#include <gtest/gtest.h>

using namespace mself;

namespace {

struct AblationCase {
  const char *Name;
  Policy P;
};

std::vector<AblationCase> ablations() {
  std::vector<AblationCase> Out;
  auto add = [&](const char *Name, auto Mut) {
    Policy P = Policy::newSelf();
    P.Name = Name;
    Mut(P);
    Out.push_back({Name, P});
  };
  add("noExtendedSplitting", [](Policy &P) { P.ExtendedSplitting = false; });
  add("noLocalSplitting", [](Policy &P) {
    P.ExtendedSplitting = false;
    P.LocalSplitting = false;
  });
  add("noRangeAnalysis", [](Policy &P) { P.RangeAnalysis = false; });
  add("noIterativeLoops", [](Policy &P) { P.IterativeLoops = false; });
  add("noLoopHeadGen", [](Policy &P) { P.LoopHeadGeneralization = false; });
  add("noTypePrediction", [](Policy &P) { P.TypePrediction = false; });
  add("noLocalTypes", [](Policy &P) { P.TrackLocalTypes = false; });
  add("tinySplitThreshold", [](Policy &P) { P.SplitThreshold = 2; });
  add("tinyInlineBudget", [](Policy &P) {
    P.MaxInlineSize = 10;
    P.MaxInlineDepth = 3;
  });
  add("noCustomize", [](Policy &P) { P.Customize = false; });
  return Out;
}

class AblationTest : public ::testing::TestWithParam<AblationCase> {};

struct Program {
  const char *Defs;
  const char *Expr;
  int64_t Expected;
};

const Program kBattery[] = {
    {"triangleNumber: n = ( | sum <- 0 | 1 upTo: n Do: [ :i | "
     "sum: sum + i ]. sum )",
     "triangleNumber: 100", 4950},
    {"fib: n = ( n < 2 ifTrue: [ n ] False: "
     "[ (fib: n - 1) + (fib: n - 2) ] )",
     "fib: 14", 377},
    {"grid = ( | t <- 0 | 1 to: 6 Do: [ :i | 1 to: 6 Do: [ :j | "
     "t: t + (i * j) ] ]. t )",
     "grid", 441},
    {"vsum = ( | v. s <- 0 | v: (vectorOfSize: 30). "
     "v doIndexes: [ :i | v at: i Put: i * i ]. "
     "v do: [ :e | s: s + e ]. s )",
     "vsum", 8555},
    {"early: lim = ( 1 to: 50 Do: [ :i | i * i > lim ifTrue: [ ^ i ] ]. "
     "0 )",
     "early: 100", 11},
    {"counter = ( | parent* = lobby. n <- 0. bump = ( n: n + 1. n ) | ). "
     "spin = ( | c | c: counter clone. 10 timesRepeat: [ c bump ]. c n )",
     "spin", 10},
    {"", "3 _IntAdd: nil IfFail: [ 0 - 4 ]", -4},
    {"", "((7 % 2) == 1) ifTrue: [ 5 max: 2 ] False: [ 0 ]", 5},
};

} // namespace

TEST_P(AblationTest, BatteryComputesCorrectResults) {
  const AblationCase &C = GetParam();
  for (const Program &Pr : kBattery) {
    VirtualMachine VM(C.P);
    std::string Err;
    if (Pr.Defs[0] != '\0')
      ASSERT_TRUE(VM.load(Pr.Defs, Err)) << C.Name << ": " << Err;
    int64_t Out = 0;
    ASSERT_TRUE(VM.evalInt(Pr.Expr, Out, Err))
        << C.Name << " on `" << Pr.Expr << "`: " << Err;
    EXPECT_EQ(Out, Pr.Expected) << C.Name << " on `" << Pr.Expr << "`";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Configs, AblationTest, ::testing::ValuesIn(ablations()),
    [](const ::testing::TestParamInfo<AblationCase> &I) {
      return std::string(I.param.Name);
    });
