//===-- tests/compiler/type_test.cpp - Type lattice unit tests -------------===//
//
// The paper's type system (§3.1): values, integer subranges, classes,
// unions, differences, merges. Includes property-style sweeps over the
// lattice operations.
//
//===----------------------------------------------------------------------===//

#include "compiler/type.h"

#include "runtime/world.h"
#include "vm/object.h"

#include <gtest/gtest.h>

using namespace mself;

namespace {

class TypeTest : public ::testing::Test {
protected:
  Heap H;
  World W{H};
  TypeContext TC{W};
};

} // namespace

TEST_F(TypeTest, IntConstantsAreDegenerateRanges) {
  const Type *T = TC.constantOf(Value::fromInt(7));
  ASSERT_TRUE(T->isIntRange());
  auto R = T->intRange();
  ASSERT_TRUE(R.has_value());
  EXPECT_EQ(R->first, 7);
  EXPECT_EQ(R->second, 7);
  ASSERT_TRUE(T->constant().has_value());
  EXPECT_EQ(T->constant()->asInt(), 7);
}

TEST_F(TypeTest, ObjectConstantsKnowTheirMap) {
  const Type *T = TC.constantOf(W.trueValue());
  EXPECT_EQ(T->definiteMap(W), W.trueMap());
  EXPECT_TRUE(T->constant().has_value());
  EXPECT_TRUE(T->excludesInt(W));
  EXPECT_TRUE(T->excludesMap(W, W.falseMap()));
  EXPECT_FALSE(T->excludesMap(W, W.trueMap()));
}

TEST_F(TypeTest, IntClassNormalization) {
  // classOf(smallIntMap) is the full integer range (§3.1: integer value
  // types and the integer class type are extreme subrange forms).
  const Type *T = TC.classOf(W.smallIntMap());
  ASSERT_TRUE(T->isIntRange());
  EXPECT_EQ(T->lo(), kMinSmallInt);
  EXPECT_EQ(T->hi(), kMaxSmallInt);
  EXPECT_EQ(T->definiteMap(W), W.smallIntMap());
}

TEST_F(TypeTest, UnknownContainsEverything) {
  const Type *U = TC.unknown();
  EXPECT_TRUE(U->contains(W, TC.intRange(0, 5)));
  EXPECT_TRUE(U->contains(W, TC.classOf(W.arrayMap())));
  EXPECT_TRUE(U->contains(W, TC.constantOf(W.nilValue())));
  EXPECT_EQ(U->definiteMap(W), nullptr);
  EXPECT_FALSE(U->excludesInt(W));
}

TEST_F(TypeTest, RangeContainment) {
  const Type *Wide = TC.intRange(0, 100);
  const Type *Narrow = TC.intRange(10, 20);
  EXPECT_TRUE(Wide->contains(W, Narrow));
  EXPECT_FALSE(Narrow->contains(W, Wide));
  EXPECT_TRUE(Wide->contains(W, TC.constantOf(Value::fromInt(50))));
  EXPECT_FALSE(Wide->contains(W, TC.constantOf(Value::fromInt(101))));
}

TEST_F(TypeTest, DifferenceExcludesSubtrahendClass) {
  const Type *U = TC.unknown();
  const Type *D = TC.difference(U, TC.intClass());
  EXPECT_TRUE(D->excludesInt(W));
  EXPECT_FALSE(D->excludesMap(W, W.arrayMap()));
  // Removing values never widens the map set.
  const Type *DA = TC.difference(TC.classOf(W.arrayMap()), TC.intClass());
  EXPECT_EQ(DA->definiteMap(W), W.arrayMap());
}

TEST_F(TypeTest, MergeRecordsConstituents) {
  const Type *A = TC.intClass();
  const Type *B = TC.unknown();
  const Type *M = TC.mergeOf(nullptr, {A, B});
  ASSERT_TRUE(M->isMerge());
  ASSERT_EQ(M->elems().size(), 2u);
  // A set union would collapse to unknown; a merge type must not (§4).
  EXPECT_FALSE(M->isUnknown());
  EXPECT_TRUE(M->elems()[0]->isIntRange());
  EXPECT_TRUE(M->elems()[1]->isUnknown());
  // Merge of equal inputs collapses.
  EXPECT_FALSE(TC.mergeOf(nullptr, {A, TC.intClass()})->isMerge());
}

TEST_F(TypeTest, MergeDefiniteMapRequiresAgreement) {
  const Type *M1 =
      TC.mergeOf(nullptr, {TC.intRange(0, 1), TC.intRange(5, 9)});
  EXPECT_EQ(M1->definiteMap(W), W.smallIntMap());
  const Type *M2 =
      TC.mergeOf(nullptr, {TC.intRange(0, 1), TC.classOf(W.arrayMap())});
  EXPECT_EQ(M2->definiteMap(W), nullptr);
}

TEST_F(TypeTest, LoopHeadGeneralizationWidensWithinClass) {
  // §5.1: value 0 at the head and value 1 at the tail generalize to the
  // integer class type, not merge{0, 1}.
  const Type *G = TC.joinAtLoopHead(nullptr, TC.intRange(0, 0),
                                    TC.intRange(1, 1), true);
  ASSERT_TRUE(G->isIntRange());
  EXPECT_EQ(G->lo(), kMinSmallInt);
  EXPECT_EQ(G->hi(), kMaxSmallInt);
}

TEST_F(TypeTest, LoopHeadWithoutGeneralizationFormsMerge) {
  const Type *G = TC.joinAtLoopHead(nullptr, TC.intRange(0, 0),
                                    TC.intRange(1, 1), false);
  EXPECT_TRUE(G->isMerge());
}

TEST_F(TypeTest, LoopHeadKeepsClassInfoAgainstUnknown) {
  // §5.2: unknown head + class tail must form merge{unknown, class}, NOT
  // collapse to unknown (which set-contains the class).
  const Type *G =
      TC.joinAtLoopHead(nullptr, TC.unknown(), TC.intClass(), true);
  ASSERT_TRUE(G->isMerge());
  EXPECT_EQ(G->elems().size(), 2u);
  // Re-joining the same tail is stable (fix-point).
  const Type *G2 = TC.joinAtLoopHead(nullptr, G, TC.intClass(), true);
  EXPECT_TRUE(G2->equals(G));
}

TEST_F(TypeTest, EqualsIsStructural) {
  EXPECT_TRUE(TC.intRange(1, 5)->equals(TC.intRange(1, 5)));
  EXPECT_FALSE(TC.intRange(1, 5)->equals(TC.intRange(1, 6)));
  EXPECT_TRUE(TC.constantOf(W.nilValue())->equals(
      TC.constantOf(W.nilValue())));
  EXPECT_FALSE(TC.constantOf(W.nilValue())->equals(
      TC.constantOf(W.trueValue())));
}

//===----------------------------------------------------------------------===//
// Property sweeps
//===----------------------------------------------------------------------===//

namespace {
struct RangeCase {
  int64_t Lo1, Hi1, Lo2, Hi2;
};
class RangeProperties : public ::testing::TestWithParam<RangeCase> {};
} // namespace

TEST_P(RangeProperties, ContainmentIsAPartialOrder) {
  Heap H;
  World W{H};
  TypeContext TC{W};
  const RangeCase &C = GetParam();
  const Type *A = TC.intRange(C.Lo1, C.Hi1);
  const Type *B = TC.intRange(C.Lo2, C.Hi2);
  // Reflexive.
  EXPECT_TRUE(A->contains(W, A));
  EXPECT_TRUE(B->contains(W, B));
  // Antisymmetric up to equality.
  if (A->contains(W, B) && B->contains(W, A))
    EXPECT_TRUE(A->equals(B));
  // Containment agrees with interval inclusion.
  bool Incl = C.Lo1 <= C.Lo2 && C.Hi2 <= C.Hi1;
  EXPECT_EQ(A->contains(W, B), Incl);
  // The integer class contains both; unknown contains the class.
  EXPECT_TRUE(TC.intClass()->contains(W, A));
  EXPECT_TRUE(TC.unknown()->contains(W, TC.intClass()));
  // Merge of A and B contains each constituent.
  const Type *M = TC.mergeOf(nullptr, {A, B});
  EXPECT_TRUE(M->contains(W, A));
  EXPECT_TRUE(M->contains(W, B));
}

INSTANTIATE_TEST_SUITE_P(
    Sweeps, RangeProperties,
    ::testing::Values(RangeCase{0, 10, 2, 5}, RangeCase{0, 10, 0, 10},
                      RangeCase{-5, 5, -5, 0}, RangeCase{0, 0, 0, 0},
                      RangeCase{-100, -50, -80, -60},
                      RangeCase{0, 10, 5, 15}, RangeCase{5, 15, 0, 10},
                      RangeCase{kMinSmallInt, kMaxSmallInt, -1, 1},
                      RangeCase{-1, 1, kMinSmallInt, kMaxSmallInt},
                      RangeCase{7, 7, 7, 7}, RangeCase{7, 7, 8, 8}));
