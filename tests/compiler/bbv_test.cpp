//===-- tests/compiler/bbv_test.cpp - Lazy basic-block versioning ---------===//
//
// The BBV tier's three load-bearing promises, tested directly:
//
//  1. The per-block version cap holds: a block reached under more distinct
//     type contexts than Policy::BbvMaxVersions routes the overflow to a
//     generic (context-free) version instead of materializing without
//     bound.
//  2. Generic fallback is semantics-preserving: the same program computes
//     the same answer under the eager optimizer, a roomy cap, and a cap of
//     one (which forces almost everything generic).
//  3. Slot-tag invalidation is precise: a conflicting store flips only the
//     guard cells covering the mutated (map, field), leaves functions
//     guarding other shapes untouched, and the flipped function still
//     computes correct answers through its slow path.
//
// Receiver laundering (the assignable lobby slot `cur`, as in
// invalidation_test) keeps the methods under test from being inlined into
// the throwaway top-level eval wrapper, so they compile — and version — as
// their own units.
//
//===----------------------------------------------------------------------===//

#include "driver/vm.h"

#include <gtest/gtest.h>

#include <string>

using namespace mself;

namespace {

/// First compiled function named \p Name, or null.
const CompiledFunction *findNamed(VirtualMachine &VM, const std::string &Name) {
  const CompiledFunction *Found = nullptr;
  VM.code().forEach([&](const CompiledFunction &F) {
    if (!Found && F.Name && *F.Name == Name)
      Found = &F;
  });
  return Found;
}

/// A loop whose head is reached under six distinct type contexts: entry
/// proves all five accumulands int (their initializers are int constants,
/// but the in-loop clobbers keep the optimizer from proving them, so they
/// stay tested — and therefore version-relevant), and each back-edge kind
/// re-loads a different one from a vector (element loads are untyped), so
/// successive contexts each lose one more fact until the sixth arrives
/// empty. `k` is deliberately a control: the optimizer proves it int
/// across the loop, never tests it, and it must therefore never appear in
/// a version key.
const char *kChurnSource =
    "driver = ( | parent* = lobby.\n"
    "  churn: n = ( | arr. i. a. b. c. d. e. k. s. r |\n"
    "    arr: (vectorOfSize: 5 FillingWith: 7).\n"
    "    i: 0. a: 1. b: 1. c: 2. d: 3. e: 4. k: 9. s: 0.\n"
    "    [ i < n ] whileTrue: [\n"
    "      s: s + a + b + c + d + e + k.\n"
    "      r: i % 5.\n"
    "      r == 0 ifTrue: [ a: (arr at: 0) ].\n"
    "      r == 1 ifTrue: [ b: (arr at: 1) ].\n"
    "      r == 2 ifTrue: [ c: (arr at: 2) ].\n"
    "      r == 3 ifTrue: [ d: (arr at: 3) ].\n"
    "      r == 4 ifTrue: [ e: (arr at: 4) ].\n"
    "      k: k + 1.\n"
    "      i: i + 1 ].\n"
    "    s ) | ).\n"
    "cur <- 0\n";

/// The C++ twin of kChurnSource's churn: method.
int64_t churnNative(int64_t N) {
  int64_t A = 1, B = 1, C = 2, D = 3, E = 4, K = 9, S = 0;
  for (int64_t I = 0; I < N; ++I) {
    S += A + B + C + D + E + K;
    switch (I % 5) {
    case 0: A = 7; break;
    case 1: B = 7; break;
    case 2: C = 7; break;
    case 3: D = 7; break;
    case 4: E = 7; break;
    }
    K += 1;
  }
  return S;
}

/// Loads kChurnSource under \p P and runs `cur churn: n` twice (the second
/// run sees fully materialized versions), returning the second answer.
int64_t runChurn(const Policy &P, int64_t N, VirtualMachine *&VMOut,
                 std::string &Err) {
  VMOut = new VirtualMachine(P);
  if (!VMOut->load(kChurnSource, Err))
    return -1;
  int64_t Out = 0;
  if (!VMOut->evalInt("cur: driver. 0", Out, Err))
    return -1;
  std::string Run = "cur churn: " + std::to_string(N);
  if (!VMOut->evalInt(Run, Out, Err))
    return -1;
  VMOut->settleBackgroundCompiles();
  if (!VMOut->evalInt(Run, Out, Err))
    return -1;
  return Out;
}

} // namespace

TEST(BbvVersionCap, SixthContextFallsBackToGeneric) {
  // Under the default cap of five, all six contexts fit the specialized
  // budget only because the sixth is empty — it runs as the generic
  // version, never as a sixth specialization.
  {
    Policy P = Policy::newSelf();
    P.BbvTier = true;
    ASSERT_EQ(P.BbvMaxVersions, 5) << "default cap drifted; test assumes 5";
    VirtualMachine *VM = nullptr;
    std::string Err;
    int64_t Got = runChurn(P, 23, VM, Err);
    ASSERT_NE(VM, nullptr);
    ASSERT_EQ(Got, churnNative(23)) << Err;
    VmTelemetry Tel = VM->telemetry();
    EXPECT_GT(Tel.Bbv.Versions, 0u);
    EXPECT_GT(Tel.Bbv.GenericVersions, 0u)
        << "the empty sixth context did not land on a generic version";
    delete VM;
  }
  // Tightening the cap to four makes the fifth distinct context — still
  // non-empty — overflow: it must take the cap fallback to generic rather
  // than materialize a fifth specialization.
  {
    Policy P = Policy::newSelf();
    P.BbvTier = true;
    P.BbvMaxVersions = 4;
    VirtualMachine *VM = nullptr;
    std::string Err;
    int64_t Got = runChurn(P, 23, VM, Err);
    ASSERT_NE(VM, nullptr);
    ASSERT_EQ(Got, churnNative(23)) << Err;
    VmTelemetry Tel = VM->telemetry();
    EXPECT_GT(Tel.Bbv.Versions, 0u);
    EXPECT_GT(Tel.Bbv.CapFallbacks, 0u)
        << "the over-cap context never hit the version cap";
    EXPECT_GT(Tel.Bbv.GenericVersions, 0u)
        << "cap overflow did not fall back to a generic version";
    delete VM;
  }
}

TEST(BbvVersionCap, GenericMatchesSpecialized) {
  // The same program under the eager optimizer, the default cap, and a
  // cap of one (everything past the first context per block goes generic)
  // must agree with the native twin — generic versions re-test, they never
  // re-interpret.
  for (int64_t N : {0, 1, 7, 23, 60}) {
    int64_t Want = churnNative(N);
    for (int Cap : {-1, 5, 1}) { // -1 = eager tier, no BBV
      Policy P = Policy::newSelf();
      if (Cap >= 0) {
        P.BbvTier = true;
        P.BbvMaxVersions = Cap;
      }
      VirtualMachine *VM = nullptr;
      std::string Err;
      int64_t Got = runChurn(P, N, VM, Err);
      EXPECT_EQ(Got, Want) << "n=" << N << " cap=" << Cap << ": " << Err;
      if (Cap == 1 && VM) {
        // With a cap of one the fallback machinery must actually engage.
        VmTelemetry Tel = VM->telemetry();
        EXPECT_GT(Tel.Bbv.CapFallbacks, 0u) << "n=" << N;
      }
      delete VM;
    }
  }
}

TEST(BbvInvalidation, ShapeMutationFlipsOnlyDependentCells) {
  Policy P = Policy::newSelf();
  P.BbvTier = true;
  VirtualMachine VM(P);
  std::string Err;
  ASSERT_TRUE(VM.load("pa = ( | parent* = lobby. v <- 1.\n"
                      "  geta = ( v + 100 ) | ).\n"
                      "pb = ( | parent* = lobby. w <- 2.\n"
                      "  getb = ( w + 200 ) | ).\n"
                      "cur <- 0\n",
                      Err))
      << Err;
  int64_t Out = 0;
  // Stores record the slots' Int tags before either getter compiles.
  ASSERT_TRUE(VM.evalInt("pa v: 3. pb w: 4. 0", Out, Err)) << Err;
  ASSERT_TRUE(VM.evalInt("cur: pa. cur geta", Out, Err)) << Err;
  EXPECT_EQ(Out, 103);
  ASSERT_TRUE(VM.evalInt("cur: pb. cur getb", Out, Err)) << Err;
  EXPECT_EQ(Out, 204);
  VM.settleBackgroundCompiles();
  // Re-run so the versions behind any stubs materialize their guards.
  ASSERT_TRUE(VM.evalInt("cur: pa. cur geta", Out, Err)) << Err;
  ASSERT_TRUE(VM.evalInt("cur: pb. cur getb", Out, Err)) << Err;

  const CompiledFunction *Ga = findNamed(VM, "geta");
  const CompiledFunction *Gb = findNamed(VM, "getb");
  ASSERT_NE(Ga, nullptr);
  ASSERT_NE(Gb, nullptr);
  ASSERT_FALSE(Ga->BbvCells.empty())
      << "geta compiled without a slot-tag guard; the test has no subject";
  for (int32_t Cell : Ga->BbvCells)
    EXPECT_EQ(Cell, 0) << "guard cell flipped before any conflicting store";
  for (int32_t Cell : Gb->BbvCells)
    EXPECT_EQ(Cell, 0);

  // The conflicting store: a heap object lands in a slot tagged Int. Only
  // cells covering (pa's map, v) may flip.
  uint64_t ConflictsBefore = VM.telemetry().Bbv.TagConflicts;
  ASSERT_TRUE(VM.evalInt("pa v: pb. 0", Out, Err)) << Err;
  VmTelemetry Tel = VM.telemetry();
  EXPECT_GT(Tel.Bbv.TagConflicts, ConflictsBefore);
  EXPECT_GT(Tel.Bbv.CellsInvalidated, 0u);
  bool AnyFlipped = false;
  for (int32_t Cell : Ga->BbvCells)
    AnyFlipped = AnyFlipped || Cell != 0;
  EXPECT_TRUE(AnyFlipped) << "the dependent function's cells did not flip";
  for (int32_t Cell : Gb->BbvCells)
    EXPECT_EQ(Cell, 0) << "an independent function's cell flipped";

  // The flipped function answers through its slow path — no stale
  // type assumption, no recompile required.
  ASSERT_TRUE(VM.evalInt("pa v: 9. cur: pa. cur geta", Out, Err)) << Err;
  EXPECT_EQ(Out, 109);
  ASSERT_TRUE(VM.evalInt("cur: pb. cur getb", Out, Err)) << Err;
  EXPECT_EQ(Out, 204);
}
