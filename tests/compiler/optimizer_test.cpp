//===-- tests/compiler/optimizer_test.cpp - Optimization behaviour ---------===//
//
// Checks that the paper's optimizations actually happen: fewer executed
// type tests and sends under new SELF, multi-version loops, register
// demotion of captured loop variables, constant folding, and range-based
// overflow-check elimination.
//
//===----------------------------------------------------------------------===//

#include "bytecode/bytecode.h"
#include "driver/vm.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace mself;

namespace {

/// Runs defs+expr under a policy and returns the execution counters.
ExecCounters runCounters(const Policy &P, const std::string &Defs,
                         const std::string &Expr, int64_t Expected) {
  VirtualMachine VM(P);
  std::string Err;
  EXPECT_TRUE(VM.load(Defs, Err)) << P.Name << ": " << Err;
  VM.interp().resetCounters();
  int64_t Out = 0;
  EXPECT_TRUE(VM.evalInt(Expr, Out, Err)) << P.Name << ": " << Err;
  EXPECT_EQ(Out, Expected) << P.Name;
  return VM.interp().counters();
}

const char *kTriangle =
    "triangleNumber: n = ( | sum <- 0 | "
    "1 upTo: n Do: [ :i | sum: sum + i ]. sum )";

} // namespace

TEST(Optimizer, NewSelfExecutesFewerInstructionsThanOldThanSt80) {
  ExecCounters St = runCounters(Policy::st80(), kTriangle,
                                "triangleNumber: 1000", 499500);
  ExecCounters Old = runCounters(Policy::oldSelf(), kTriangle,
                                 "triangleNumber: 1000", 499500);
  ExecCounters New = runCounters(Policy::newSelf(), kTriangle,
                                 "triangleNumber: 1000", 499500);
  EXPECT_LT(Old.Instructions, St.Instructions);
  EXPECT_LT(New.Instructions, Old.Instructions);
}

TEST(Optimizer, NewSelfEliminatesDynamicSendsInLoop) {
  ExecCounters St = runCounters(Policy::st80(), kTriangle,
                                "triangleNumber: 500", 124750);
  ExecCounters New = runCounters(Policy::newSelf(), kTriangle,
                                 "triangleNumber: 500", 124750);
  // ST-80 performs several dynamically-bound sends per iteration; new SELF
  // inlines them all — the residue is O(1), not O(n).
  EXPECT_GT(St.Sends, 1000u);
  EXPECT_LT(New.Sends, 50u);
}

TEST(Optimizer, NewSelfHoistsTypeTestsOutOfLoop) {
  // Old SELF treats loop locals as unknown: type tests every iteration.
  // New SELF's loop versions keep tests out of the steady state (§5.4).
  ExecCounters Old = runCounters(Policy::oldSelf(), kTriangle,
                                 "triangleNumber: 1000", 499500);
  ExecCounters New = runCounters(Policy::newSelf(), kTriangle,
                                 "triangleNumber: 1000", 499500);
  EXPECT_GT(Old.TypeTests, 1000u);
  EXPECT_LT(New.TypeTests, 50u);
}

TEST(Optimizer, LoopVariablesDemotedToRegisters) {
  // sum and i are captured by blocks in the source, but when every block
  // inlines, the environment is elided (no env accesses at run time).
  ExecCounters New = runCounters(Policy::newSelf(), kTriangle,
                                 "triangleNumber: 1000", 499500);
  EXPECT_EQ(New.EnvAccesses, 0u);
  EXPECT_EQ(New.BlocksMade, 0u);
  // The baseline allocates closures and touches the env every iteration.
  ExecCounters St = runCounters(Policy::st80(), kTriangle,
                                "triangleNumber: 1000", 499500);
  EXPECT_GT(St.EnvAccesses, 1000u);
  EXPECT_GT(St.BlocksMade, 0u);
}

TEST(Optimizer, MultiVersionLoopCompiled) {
  VirtualMachine VM(Policy::newSelf());
  std::string Err;
  ASSERT_TRUE(VM.load(kTriangle, Err)) << Err;
  int64_t Out = 0;
  // Launder the limit through a vector so n's type is unknown: the loop
  // head then binds n to merge{unknown, int} and splits into a fast
  // all-integer version plus a general testing version (§5.3).
  ASSERT_TRUE(VM.evalInt("mv = ( | v | v: (vectorOfSize: 1). "
                         "v at: 0 Put: 10. triangleNumber: (v at: 0) ). mv",
                         Out, Err))
      << Err;
  EXPECT_EQ(Out, 45);
  // triangleNumber: is small enough to inline into the top-level unit, so
  // scan every compiled function for a multi-version loop.
  bool FoundMultiVersion = false;
  VM.code().forEach([&](const CompiledFunction &Fn) {
    if (Fn.Stats.LoopVersions >= 2)
      FoundMultiVersion = true;
  });
  EXPECT_TRUE(FoundMultiVersion)
      << "the sum loop should compile a specialized + a general version";
}

TEST(Optimizer, IterativeAnalysisIterates) {
  VirtualMachine VM(Policy::newSelf());
  std::string Err;
  ASSERT_TRUE(VM.load(kTriangle, Err)) << Err;
  int64_t Out = 0;
  ASSERT_TRUE(VM.evalInt("triangleNumber: 10", Out, Err)) << Err;
  int MaxIters = 0;
  VM.code().forEach([&](const CompiledFunction &Fn) {
    MaxIters = std::max(MaxIters, Fn.Stats.LoopIterations);
  });
  EXPECT_GE(MaxIters, 2)
      << "value types at the head force at least one re-analysis";
}

TEST(Optimizer, ConstantFolding) {
  VirtualMachine VM(Policy::newSelf());
  std::string Err;
  ASSERT_TRUE(VM.load("k = ( 3 + 4 * 2 )", Err)) << Err;
  VM.interp().resetCounters();
  int64_t Out = 0;
  ASSERT_TRUE(VM.evalInt("k", Out, Err)) << Err;
  EXPECT_EQ(Out, 14);
  // The whole arithmetic folds at compile time: no tests remain, and even
  // the send of k itself inlines into the top-level unit.
  EXPECT_EQ(VM.interp().counters().TypeTests, 0u);
  EXPECT_EQ(VM.interp().counters().Sends, 0u);
}

TEST(Optimizer, RangeAnalysisRemovesOverflowChecks) {
  // With bounded ranges the increment cannot overflow; the compiled loop
  // body contains raw adds. We check via compile stats.
  const char *Src = "bounded = ( | s <- 0 | 1 to: 10 Do: [ :i | "
                    "s: (s % 1000) + i ]. s )";
  VirtualMachine VM(Policy::newSelf());
  std::string Err;
  ASSERT_TRUE(VM.load(Src, Err)) << Err;
  int64_t Out = 0;
  ASSERT_TRUE(VM.evalInt("bounded", Out, Err)) << Err;
  EXPECT_EQ(Out, 55);
  int Eliminated = 0;
  VM.code().forEach([&](const CompiledFunction &Fn) {
    Eliminated += Fn.Stats.ChecksEliminated;
  });
  EXPECT_GT(Eliminated, 0);
}

TEST(Optimizer, SplittingStatsRecorded) {
  // The boolean produced by `<` merges true/false; ifTrue:False: splits it
  // back (local splitting suffices here, extended for distance).
  const char *Defs = "pick: a = ( | r | r: (a < 5). "
                     "r ifTrue: [ 1 ] False: [ 2 ] )";
  VirtualMachine VM(Policy::newSelf());
  std::string Err;
  ASSERT_TRUE(VM.load(Defs, Err)) << Err;
  int64_t Out = 0;
  ASSERT_TRUE(VM.evalInt("(pick: 3) * 10 + (pick: 7)", Out, Err)) << Err;
  EXPECT_EQ(Out, 12);
}

TEST(Optimizer, ExtendedSplittingBeatsLocalOnDistantSends) {
  // Code between the comparison and its consumer defeats local splitting
  // but not extended splitting: under new SELF the boolean dispatch costs
  // no run-time type tests, under old SELF it does.
  const char *Defs =
      "far: a = ( | r. pad <- 0 | r: (a < 5). pad: pad + 1. pad: pad + 2. "
      "r ifTrue: [ 1 ] False: [ 2 ] )";
  ExecCounters Old =
      runCounters(Policy::oldSelf(), Defs, "(far: 3) * 10 + (far: 7)", 12);
  ExecCounters New =
      runCounters(Policy::newSelf(), Defs, "(far: 3) * 10 + (far: 7)", 12);
  EXPECT_LT(New.TypeTests, Old.TypeTests);
}

TEST(Optimizer, CustomizationCompilesPerReceiverMap) {
  // Receivers come out of a vector, so their maps are unknown at compile
  // time and `bit` dispatches dynamically — compiling one customized
  // method per receiver map at run time.
  const char *Defs =
      "a = ( | parent* = lobby. bit = ( 1 ) | ). "
      "b = ( | parent* = lobby. bit = ( 2 ) | ). "
      "probeAll = ( | v. t <- 0 | v: (vectorOfSize: 2). "
      "v at: 0 Put: a. v at: 1 Put: b. "
      "v do: [ :o | t: t + o bit ]. t )";
  VirtualMachine VM(Policy::newSelf());
  std::string Err;
  ASSERT_TRUE(VM.load(Defs, Err)) << Err;
  int64_t Out = 0;
  ASSERT_TRUE(VM.evalInt("probeAll", Out, Err)) << Err;
  EXPECT_EQ(Out, 3);
  int Customized = 0;
  VM.code().forEach([&](const CompiledFunction &Fn) {
    if (Fn.Name && *Fn.Name == "bit")
      ++Customized;
  });
  EXPECT_EQ(Customized, 2);
}

TEST(Optimizer, CompiledCodeSizeSmallerThanBaselineForLoopKernels) {
  auto codeBytesFor = [](const Policy &P) {
    VirtualMachine VM(P);
    std::string Err;
    EXPECT_TRUE(VM.load(kTriangle, Err)) << Err;
    int64_t Out = 0;
    EXPECT_TRUE(VM.evalInt("triangleNumber: 50", Out, Err)) << Err;
    return VM.code().totalCodeBytes();
  };
  size_t St80 = codeBytesFor(Policy::st80());
  size_t NewSelf = codeBytesFor(Policy::newSelf());
  // The inlined version is larger than the send-only version of this one
  // method, but must stay within a sane factor.
  EXPECT_GT(NewSelf, 0u);
  EXPECT_GT(St80, 0u);
  EXPECT_LT(NewSelf, St80 * 40);
}
