//===-- tests/harness/differential.h - Differential policy harness ---------===//
//
// Part of miniself, a reproduction of Chambers & Ungar, PLDI '90.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The differential-testing harness: runs one program under the full
/// compiler-policy × dispatch-cache matrix — every paper preset (ST-80,
/// old SELF, new SELF) crossed with PIC on / monomorphic / no global cache /
/// no caches at all (st80/nocache being pure interpretation) — and asserts
/// that every configuration computes the identical result. This is the
/// strongest correctness property in the system: neither the optimizer nor
/// any dispatch caching layer may change observable behaviour.
///
//===----------------------------------------------------------------------===//

#ifndef MINISELF_TESTS_HARNESS_DIFFERENTIAL_H
#define MINISELF_TESTS_HARNESS_DIFFERENTIAL_H

#include "driver/vm.h"

#include <gtest/gtest.h>

#include <limits>
#include <string>
#include <vector>

namespace mself::difftest {

/// One labelled configuration of the differential matrix.
struct Config {
  std::string Label;
  Policy P;
};

/// The full matrix: {st80, oldself, newself} × {pic, mono, noglc, nocache},
/// plus the execution-tier axis on the optimizing presets, the
/// execution-engine axis (dispatch loop / quickening / fusion) on the
/// bracketing presets, and the collector axis (mark-sweep-only vs a
/// tiny-nursery generational stress mode) on every preset.
/// "pic" is the default dispatch stack (PIC + global lookup cache), "mono"
/// degrades to single-entry replace-on-miss caches (the pre-PIC system),
/// "noglc" runs PICs without the global cache, and "nocache" performs a
/// full lookup on every send — st80/nocache is pure interpretation.
/// The tier axis: "/pic" doubles as full-opt-first-call (tiering off),
/// "tier1" promotes on the first invocation, "tierN" promotes mid-run at a
/// small threshold (exercising baseline → optimized swaps while frames are
/// live), and "tierbase" never promotes — baseline-only execution.
inline std::vector<Config> policyMatrix() {
  std::vector<Config> Out;
  for (const Policy &Base :
       {Policy::st80(), Policy::oldSelf(), Policy::newSelf()}) {
    Out.push_back({Base.Name + "/pic", Base});

    Policy Mono = Base;
    Mono.PolymorphicInlineCaches = false;
    Mono.UseGlobalLookupCache = false;
    Out.push_back({Base.Name + "/mono", Mono});

    Policy NoGlc = Base;
    NoGlc.UseGlobalLookupCache = false;
    Out.push_back({Base.Name + "/noglc", NoGlc});

    Policy NoCache = Base;
    NoCache.InlineCaches = false;
    NoCache.UseGlobalLookupCache = false;
    Out.push_back({Base.Name + "/nocache", NoCache});
  }
  // Tiny global cache: forces heavy replacement traffic so index collisions
  // cannot change results either.
  Policy TinyGlc = Policy::newSelf();
  TinyGlc.GlobalLookupCacheEntries = 8;
  Out.push_back({"newself/tinyglc", TinyGlc});

  // Tier axis: baseline-tier execution, immediate promotion, and mid-run
  // promotion must all be observationally identical to full-opt-first-call
  // (the plain presets above). oldself and newself differ in how much the
  // optimized tier changes relative to baseline, so both are crossed.
  for (const Policy &Base : {Policy::oldSelf(), Policy::newSelf()}) {
    Policy T1 = Base;
    T1.TieredCompilation = true;
    T1.TierUpThreshold = 1;
    Out.push_back({Base.Name + "/tier1", T1});

    Policy TN = Base;
    TN.TieredCompilation = true;
    TN.TierUpThreshold = 8;
    Out.push_back({Base.Name + "/tierN", TN});
  }
  Policy BaseOnly = Policy::newSelf();
  BaseOnly.TieredCompilation = true;
  BaseOnly.TierUpThreshold = std::numeric_limits<int>::max();
  Out.push_back({"newself/tierbase", BaseOnly});

  // Execution-engine axis: the dispatch loop (threaded vs switch), opcode
  // quickening, and superinstruction fusion must each be observationally
  // invisible. st80 and newself bracket the compiler spectrum — st80 runs
  // the most generic sends (quickening hits hardest), newself the most
  // optimized bytecode (fusion hits hardest).
  for (const Policy &Base : {Policy::st80(), Policy::newSelf()}) {
    Policy NoQuick = Base;
    NoQuick.OpcodeQuickening = false;
    Out.push_back({Base.Name + "/noquick", NoQuick});

    Policy NoFuse = Base;
    NoFuse.Superinstructions = false;
    Out.push_back({Base.Name + "/nofuse", NoFuse});

    Policy Plain = Base;
    Plain.ThreadedDispatch = false;
    Plain.OpcodeQuickening = false;
    Plain.Superinstructions = false;
    Out.push_back({Base.Name + "/plainloop", Plain});
  }
  // Switch loop with quickening + fusion still on: the non-default engine
  // pairing (threaded-off is the portable fallback everywhere).
  Policy SwitchLoop = Policy::newSelf();
  SwitchLoop.ThreadedDispatch = false;
  Out.push_back({"newself/switchloop", SwitchLoop});
  // Quickening across tier promotion: baseline code quickens, promotion
  // swaps in fresh optimized code mid-run, which must re-quicken cleanly.
  Policy TierQuick = Policy::newSelf();
  TierQuick.TieredCompilation = true;
  TierQuick.TierUpThreshold = 8;
  TierQuick.ThreadedDispatch = false;
  Out.push_back({"newself/tierquick", TierQuick});

  // Collector axis: the memory system must be observationally invisible
  // too. "marksweep" turns the generational collector off entirely (every
  // object old from birth, no barriers, no motion); "tinynursery" is the
  // opposite extreme — a ~4 KiB nursery with promotion age 1 forces
  // copying scavenges mid-send, so PICs, quickened sites, and closure
  // environments are exercised against object motion on every preset.
  // newself/tinytier additionally promotes code tiers mid-run while the
  // scavenger moves objects under the running frames.
  for (const Policy &Base :
       {Policy::st80(), Policy::oldSelf(), Policy::newSelf()}) {
    Policy MarkSweep = Base;
    MarkSweep.GenerationalGc = false;
    MarkSweep.GcThresholdKiB = 256;
    Out.push_back({Base.Name + "/marksweep", MarkSweep});

    Policy TinyNursery = Base;
    TinyNursery.GcNurseryKiB = 4;
    TinyNursery.GcPromotionAge = 1;
    TinyNursery.GcThresholdKiB = 512;
    Out.push_back({Base.Name + "/tinynursery", TinyNursery});
  }
  Policy TinyTier = Policy::newSelf();
  TinyTier.GcNurseryKiB = 4;
  TinyTier.GcPromotionAge = 1;
  TinyTier.GcThresholdKiB = 512;
  TinyTier.TieredCompilation = true;
  TinyTier.TierUpThreshold = 8;
  Out.push_back({"newself/tinytier", TinyTier});
  // Tiny nursery with quickening off: object motion against generic sends
  // only (isolates the PIC/GLC updating from the quickened-operand
  // updating covered by tinynursery above).
  Policy TinyNoQuick = Policy::newSelf();
  TinyNoQuick.GcNurseryKiB = 4;
  TinyNoQuick.GcPromotionAge = 1;
  TinyNoQuick.GcThresholdKiB = 512;
  TinyNoQuick.OpcodeQuickening = false;
  Out.push_back({"newself/tinynoquick", TinyNoQuick});
  return Out;
}

/// Runs \p Defs + \p Expr under every configuration in the matrix. Fails
/// (with the offending configuration's label) unless every configuration
/// succeeds and they all agree; on success stores the common value in
/// \p Out.
inline ::testing::AssertionResult
runIdentical(const std::string &Defs, const std::string &Expr, int64_t &Out) {
  bool Have = false;
  int64_t First = 0;
  std::string FirstLabel;
  for (const Config &C : policyMatrix()) {
    VirtualMachine VM(C.P);
    std::string Err;
    if (!Defs.empty() && !VM.load(Defs, Err))
      return ::testing::AssertionFailure()
             << C.Label << " failed to load defs: " << Err;
    int64_t V = 0;
    if (!VM.evalInt(Expr, V, Err))
      return ::testing::AssertionFailure()
             << C.Label << " failed on '" << Expr << "': " << Err;
    if (!Have) {
      Have = true;
      First = V;
      FirstLabel = C.Label;
    } else if (V != First) {
      return ::testing::AssertionFailure()
             << "differential mismatch on '" << Expr << "': " << FirstLabel
             << " => " << First << " but " << C.Label << " => " << V;
    }
  }
  Out = First;
  return ::testing::AssertionSuccess();
}

/// runIdentical() plus a check of the agreed value against \p Expected.
inline ::testing::AssertionResult expectAll(const std::string &Defs,
                                            const std::string &Expr,
                                            int64_t Expected) {
  int64_t Got = 0;
  ::testing::AssertionResult R = runIdentical(Defs, Expr, Got);
  if (!R)
    return R;
  if (Got != Expected)
    return ::testing::AssertionFailure()
           << "all configurations agree on '" << Expr << "' but computed "
           << Got << ", expected " << Expected;
  return ::testing::AssertionSuccess();
}

} // namespace mself::difftest

#endif // MINISELF_TESTS_HARNESS_DIFFERENTIAL_H
