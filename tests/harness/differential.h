//===-- tests/harness/differential.h - Differential policy harness ---------===//
//
// Part of miniself, a reproduction of Chambers & Ungar, PLDI '90.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The differential-testing harness: runs one program under the full
/// compiler-policy × dispatch-cache matrix — every paper preset (ST-80,
/// old SELF, new SELF) crossed with PIC on / monomorphic / no global cache /
/// no caches at all (st80/nocache being pure interpretation) — and asserts
/// that every configuration computes the identical result. This is the
/// strongest correctness property in the system: neither the optimizer nor
/// any dispatch caching layer may change observable behaviour.
///
//===----------------------------------------------------------------------===//

#ifndef MINISELF_TESTS_HARNESS_DIFFERENTIAL_H
#define MINISELF_TESTS_HARNESS_DIFFERENTIAL_H

#include "driver/isolate.h"
#include "driver/vm.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

namespace mself::difftest {

/// One labelled configuration of the differential matrix.
struct Config {
  std::string Label;
  Policy P;
};

/// The full matrix, enumerated from the Policy preset registry: every
/// preset tagged InMatrix — {st80, oldself, newself} × {pic, mono, noglc,
/// nocache} on the dispatch axis, the execution-tier axis (tier1/tierN/
/// tierbase), the execution-engine axis (dispatch loop / quickening /
/// fusion), the collector axis (mark-sweep vs tiny-nursery stress), the
/// background-compilation axis (off-thread promotion, GC-stressed
/// background promotion, saturated-queue fallback), and the
/// escape-analysis axis (noescape rows: heap-allocate every block and
/// environment). See compiler/policy.cpp (buildRegistry) for what each
/// entry exercises.
inline std::vector<Config> policyMatrix() {
  std::vector<Config> Out;
  for (const PolicyPreset *E : matrixPresets())
    Out.push_back({E->Name, E->P});
  return Out;
}

/// The isolates axis: runs \p Defs + \p Expr in every isolate of an
/// N-isolate SharedRuntime (shared interner/AST/code tier, shared compile
/// pool) and fails unless all N isolates compute \p Expected. This pins the
/// tentpole property of server mode: sharing immutable compiler artifacts
/// across isolates never changes observable behaviour — isolate 2..N
/// rehydrate code isolate 1 compiled, and must agree with it (and with the
/// standalone matrix).
inline ::testing::AssertionResult runIdenticalMultiIsolate(
    const std::string &Defs, const std::string &Expr, int64_t Expected, int N) {
  SharedRuntime RT(1);
  std::vector<std::unique_ptr<Isolate>> Isolates;
  for (int I = 0; I < N; ++I)
    Isolates.push_back(RT.createIsolate());
  for (int I = 0; I < N; ++I) {
    VirtualMachine &VM = Isolates[I]->vm();
    std::string Err;
    if (!Defs.empty() && !VM.load(Defs, Err))
      return ::testing::AssertionFailure()
             << "isolate " << I << "/" << N << " failed to load defs: " << Err;
    int64_t V = 0;
    if (!VM.evalInt(Expr, V, Err))
      return ::testing::AssertionFailure()
             << "isolate " << I << "/" << N << " failed on '" << Expr
             << "': " << Err;
    if (V != Expected)
      return ::testing::AssertionFailure()
             << "isolates-axis mismatch on '" << Expr << "': standalone => "
             << Expected << " but isolate " << I << "/" << N << " => " << V;
  }
  return ::testing::AssertionSuccess();
}

/// Runs \p Defs + \p Expr under every configuration in the matrix, then
/// under the isolates axis (1/2/8 isolates of one SharedRuntime). Fails
/// (with the offending configuration's label) unless every configuration
/// succeeds and they all agree; on success stores the common value in
/// \p Out.
inline ::testing::AssertionResult
runIdentical(const std::string &Defs, const std::string &Expr, int64_t &Out) {
  bool Have = false;
  int64_t First = 0;
  std::string FirstLabel;
  for (const Config &C : policyMatrix()) {
    VirtualMachine VM(C.P);
    std::string Err;
    if (!Defs.empty() && !VM.load(Defs, Err))
      return ::testing::AssertionFailure()
             << C.Label << " failed to load defs: " << Err;
    int64_t V = 0;
    if (!VM.evalInt(Expr, V, Err))
      return ::testing::AssertionFailure()
             << C.Label << " failed on '" << Expr << "': " << Err;
    if (!Have) {
      Have = true;
      First = V;
      FirstLabel = C.Label;
    } else if (V != First) {
      return ::testing::AssertionFailure()
             << "differential mismatch on '" << Expr << "': " << FirstLabel
             << " => " << First << " but " << C.Label << " => " << V;
    }
  }
  for (int N : {1, 2, 8}) {
    ::testing::AssertionResult R =
        runIdenticalMultiIsolate(Defs, Expr, First, N);
    if (!R)
      return R;
  }
  Out = First;
  return ::testing::AssertionSuccess();
}

/// runIdentical() plus a check of the agreed value against \p Expected.
inline ::testing::AssertionResult expectAll(const std::string &Defs,
                                            const std::string &Expr,
                                            int64_t Expected) {
  int64_t Got = 0;
  ::testing::AssertionResult R = runIdentical(Defs, Expr, Got);
  if (!R)
    return R;
  if (Got != Expected)
    return ::testing::AssertionFailure()
           << "all configurations agree on '" << Expr << "' but computed "
           << Got << ", expected " << Expected;
  return ::testing::AssertionSuccess();
}

} // namespace mself::difftest

#endif // MINISELF_TESTS_HARNESS_DIFFERENTIAL_H
