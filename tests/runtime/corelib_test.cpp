//===-- tests/runtime/corelib_test.cpp - Core library behaviour ------------===//
//
// The embedded mini-SELF core library (runtime/corelib.cpp) is ordinary
// user-level code; these tests pin its protocol under the optimizing
// compiler (the cross-policy tests cover policy equivalence).
//
//===----------------------------------------------------------------------===//

#include "driver/vm.h"

#include <gtest/gtest.h>

using namespace mself;

namespace {

class CorelibTest : public ::testing::Test {
protected:
  VirtualMachine VM{Policy::newSelf()};

  int64_t evalInt(const std::string &Src) {
    int64_t Out = 0;
    std::string Err;
    EXPECT_TRUE(VM.evalInt(Src, Out, Err)) << Err << " [" << Src << "]";
    return Out;
  }
  bool evalBool(const std::string &Src) {
    Interpreter::Outcome O = VM.eval(Src);
    EXPECT_TRUE(O.Ok) << O.Message;
    EXPECT_TRUE(O.Result == VM.world().trueValue() ||
                O.Result == VM.world().falseValue())
        << "not a boolean: " << O.Result.describe();
    return O.Result == VM.world().trueValue();
  }
};

} // namespace

TEST_F(CorelibTest, IntegerProtocol) {
  EXPECT_EQ(evalInt("17 min: 4"), 4);
  EXPECT_EQ(evalInt("17 max: 4"), 17);
  EXPECT_EQ(evalInt("(0 - 9) abs"), 9);
  EXPECT_EQ(evalInt("9 negate"), -9);
  EXPECT_TRUE(evalBool("0 isZero"));
  EXPECT_FALSE(evalBool("3 isZero"));
  EXPECT_TRUE(evalBool("4 even"));
  EXPECT_TRUE(evalBool("5 odd"));
  EXPECT_TRUE(evalBool("5 between: 1 And: 9"));
  EXPECT_FALSE(evalBool("5 between: 6 And: 9"));
  EXPECT_EQ(evalInt("true asBit + false asBit"), 1);
}

TEST_F(CorelibTest, IterationProtocol) {
  EXPECT_EQ(evalInt("m1 = ( | s <- 0 | 3 to: 7 Do: [ :i | s: s + i ]. s )."
                    " m1"),
            25);
  EXPECT_EQ(evalInt("m2 = ( | s <- 0 | 3 upTo: 7 Do: [ :i | s: s + i ]. s "
                    "). m2"),
            18);
  EXPECT_EQ(evalInt("m3 = ( | s <- 0 | 7 downTo: 3 Do: [ :i | s: s + i ]. "
                    "s ). m3"),
            25);
  EXPECT_EQ(evalInt("m4 = ( | s <- 0 | 1 to: 10 By: 4 Do: [ :i | s: s + i "
                    "]. s ). m4"),
            15);
  // Bounds that never admit an iteration.
  EXPECT_EQ(evalInt("m5 = ( | s <- 0 | 5 to: 1 Do: [ :i | s: s + i ]. s )."
                    " m5"),
            0);
}

TEST_F(CorelibTest, BooleanProtocol) {
  EXPECT_TRUE(evalBool("(3 < 4) and: [ 4 < 5 ]"));
  EXPECT_FALSE(evalBool("(3 < 4) and: [ 5 < 4 ]"));
  EXPECT_TRUE(evalBool("(4 < 3) or: [ 4 < 5 ]"));
  EXPECT_TRUE(evalBool("(4 < 3) not"));
  // Short-circuiting: the unreached arm would divide by zero.
  EXPECT_FALSE(evalBool("(4 < 3) and: [ (1 / 0) == 0 ]"));
  EXPECT_TRUE(evalBool("(3 < 4) or: [ (1 / 0) == 0 ]"));
  EXPECT_EQ(evalInt("nil isNil asBit"), 1);
  EXPECT_EQ(evalInt("3 isNil asBit"), 0);
  EXPECT_EQ(evalInt("3 notNil asBit"), 1);
}

TEST_F(CorelibTest, VectorProtocol) {
  EXPECT_EQ(evalInt("(vectorOfSize: 4 FillingWith: 9) first"), 9);
  EXPECT_EQ(evalInt("(vectorOfSize: 4 FillingWith: 9) last"), 9);
  EXPECT_EQ(evalInt("(vectorOfSize: 0) isEmpty asBit"), 1);
  EXPECT_EQ(evalInt("(vectorOfSize: 3) isEmpty asBit"), 0);
  EXPECT_EQ(evalInt("c1 = ( | v. w | v: (vectorOfSize: 2 FillingWith: 5). "
                    "w: v copy. w at: 0 Put: 1. (v at: 0) * 10 + (w at: 0) "
                    "). c1"),
            51);
}

TEST_F(CorelibTest, VectorIndexErrorsReport) {
  Interpreter::Outcome O = VM.eval("(vectorOfSize: 2) at: 5");
  EXPECT_FALSE(O.Ok);
  EXPECT_NE(O.Message.find("index out of bounds"), std::string::npos);
  O = VM.eval("(vectorOfSize: 2) at: 5 Put: 0");
  EXPECT_FALSE(O.Ok);
}

TEST_F(CorelibTest, StringProtocol) {
  EXPECT_EQ(evalInt("'hello' size"), 5);
  EXPECT_EQ(evalInt("('foo' , 'bar') size"), 6);
  EXPECT_TRUE(evalBool("'abc' sameAs: 'abc'"));
  EXPECT_FALSE(evalBool("'abc' sameAs: 'abd'"));
  // Strings are not identical unless the same object.
  EXPECT_EQ(evalInt("ids = ( | s | s: 'x'. (s == s) asBit ). ids"), 1);
}

TEST_F(CorelibTest, IdentityAndClone) {
  EXPECT_TRUE(evalBool("nil == nil"));
  EXPECT_FALSE(evalBool("nil == 0"));
  EXPECT_TRUE(evalBool("3 == 3"));
  std::string Err;
  ASSERT_TRUE(VM.load("pr = ( | parent* = lobby. x <- 2 | )", Err)) << Err;
  EXPECT_FALSE(evalBool("pr == pr clone"));
  EXPECT_EQ(evalInt("pr clone x"), 2);
}

TEST_F(CorelibTest, ArithmeticErrorsReport) {
  Interpreter::Outcome O = VM.eval("3 + nil");
  EXPECT_FALSE(O.Ok);
  EXPECT_NE(O.Message.find("primitive failed"), std::string::npos);
  O = VM.eval("nil + 3");
  EXPECT_FALSE(O.Ok);
  O = VM.eval("3 / 0");
  EXPECT_FALSE(O.Ok);
  O = VM.eval("3 % 0");
  EXPECT_FALSE(O.Ok);
}

TEST_F(CorelibTest, UserErrorsCarryTheirMessage) {
  Interpreter::Outcome O = VM.eval("error: 'custom failure text'");
  EXPECT_FALSE(O.Ok);
  EXPECT_NE(O.Message.find("custom failure text"), std::string::npos);
}
