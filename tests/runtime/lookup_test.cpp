//===-- tests/runtime/lookup_test.cpp - Message lookup unit tests ----------===//

#include "runtime/lookup.h"

#include "runtime/world.h"
#include "vm/object.h"

#include <gtest/gtest.h>

using namespace mself;

namespace {

class LookupTest : public ::testing::Test {
protected:
  Heap H;
  World W{H};

  const std::string *sym(const char *S) { return W.interner().intern(S); }

  bool loadOk(const std::string &Src) {
    std::vector<const ast::Code *> Exprs;
    std::string Err;
    bool Ok = W.loadSource(Src, Exprs, Err);
    EXPECT_TRUE(Ok) << Err;
    return Ok;
  }

  Object *lobbyConst(const char *Name) {
    const SlotDesc *S = W.lobby()->map()->findSlot(sym(Name));
    return S ? S->Constant.asObject() : nullptr;
  }
};

} // namespace

TEST_F(LookupTest, OwnSlotBeatsParent) {
  loadOk("base = ( | v = 1 | ). child = ( | parent* = base. v = 2 | )");
  Object *C = lobbyConst("child");
  LookupResult R = lookupSelector(W, C->map(), sym("v"));
  ASSERT_EQ(R.ResultKind, LookupResult::Kind::Constant);
  EXPECT_EQ(R.Slot->Constant.asInt(), 2);
}

TEST_F(LookupTest, InheritedThroughParentChain) {
  loadOk("g1 = ( | v = 7 | ). g2 = ( | parent* = g1 | ). "
         "g3 = ( | parent* = g2 | )");
  Object *C = lobbyConst("g3");
  LookupResult R = lookupSelector(W, C->map(), sym("v"));
  ASSERT_EQ(R.ResultKind, LookupResult::Kind::Constant);
  EXPECT_EQ(R.Slot->Constant.asInt(), 7);
}

TEST_F(LookupTest, FirstParentWinsInOrder) {
  loadOk("pa = ( | v = 1 | ). pb = ( | v = 2 | ). "
         "kid = ( | p1* = pa. p2* = pb | )");
  Object *C = lobbyConst("kid");
  LookupResult R = lookupSelector(W, C->map(), sym("v"));
  ASSERT_EQ(R.ResultKind, LookupResult::Kind::Constant);
  EXPECT_EQ(R.Slot->Constant.asInt(), 1);
}

TEST_F(LookupTest, DataSlotHolderIsParentObject) {
  loadOk("shared = ( | count <- 10 | ). "
         "user = ( | parent* = shared | )");
  Object *U = lobbyConst("user");
  Object *S = lobbyConst("shared");
  LookupResult R = lookupSelector(W, U->map(), sym("count"));
  ASSERT_EQ(R.ResultKind, LookupResult::Kind::Data);
  EXPECT_EQ(R.Holder, S);
  // Assignment selector resolves to the same slot.
  LookupResult A = lookupSelector(W, U->map(), sym("count:"));
  ASSERT_EQ(A.ResultKind, LookupResult::Kind::Assign);
  EXPECT_EQ(A.Holder, S);
}

TEST_F(LookupTest, OwnDataSlotHolderIsNull) {
  loadOk("thing = ( | x <- 1 | )");
  Object *T = lobbyConst("thing");
  LookupResult R = lookupSelector(W, T->map(), sym("x"));
  ASSERT_EQ(R.ResultKind, LookupResult::Kind::Data);
  EXPECT_EQ(R.Holder, nullptr);
}

TEST_F(LookupTest, CyclesTerminate) {
  // lobby's parent chains already cycle (objects name the lobby, whose
  // slots include those objects); a miss must still terminate.
  LookupResult R = lookupSelector(W, W.lobby()->map(), sym("noSuchName"));
  EXPECT_FALSE(R.found());
}

TEST_F(LookupTest, MethodsClassified) {
  loadOk("o = ( | m = ( 3 ) | )");
  Object *O = lobbyConst("o");
  LookupResult R = lookupSelector(W, O->map(), sym("m"));
  EXPECT_EQ(R.ResultKind, LookupResult::Kind::Method);
}
