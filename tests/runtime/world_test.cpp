//===-- tests/runtime/world_test.cpp - World bootstrap unit tests ----------===//

#include "runtime/world.h"

#include "runtime/lookup.h"
#include "vm/object.h"

#include <gtest/gtest.h>

using namespace mself;

namespace {

class WorldTest : public ::testing::Test {
protected:
  Heap H;
  World W{H};
};

} // namespace

TEST_F(WorldTest, CoreObjectsExist) {
  EXPECT_NE(W.lobby(), nullptr);
  EXPECT_TRUE(W.nilValue().isObject());
  EXPECT_TRUE(W.trueValue().isObject());
  EXPECT_TRUE(W.falseValue().isObject());
  EXPECT_NE(W.trueMap(), W.falseMap());
}

TEST_F(WorldTest, MapOfValues) {
  EXPECT_EQ(W.mapOf(Value::fromInt(3)), W.smallIntMap());
  EXPECT_EQ(W.mapOf(W.nilValue()), W.nilMap());
  EXPECT_EQ(W.mapOf(W.lobbyValue()), W.lobby()->map());
}

TEST_F(WorldTest, IntTraitsReachableFromIntegers) {
  const std::string *Plus = W.interner().intern("+");
  LookupResult R = lookupSelector(W, W.smallIntMap(), Plus);
  EXPECT_EQ(R.ResultKind, LookupResult::Kind::Method);
}

TEST_F(WorldTest, GlobalsReachableFromIntegers) {
  // intTraits has parent* = lobby, so lobby globals are visible from ints.
  const std::string *NilName = W.interner().intern("nil");
  LookupResult R = lookupSelector(W, W.smallIntMap(), NilName);
  EXPECT_EQ(R.ResultKind, LookupResult::Kind::Constant);
  EXPECT_EQ(R.Slot->Constant, W.nilValue());
}

TEST_F(WorldTest, LoadDefinesLobbySlots) {
  std::vector<const ast::Code *> Exprs;
  std::string Err;
  ASSERT_TRUE(W.loadSource("seven = 7. name = 'x'", Exprs, Err)) << Err;
  const SlotDesc *S = W.lobby()->map()->findSlot(W.interner().intern("seven"));
  ASSERT_NE(S, nullptr);
  EXPECT_EQ(S->Constant.asInt(), 7);
}

TEST_F(WorldTest, LoadDataSlotOnLobby) {
  std::vector<const ast::Code *> Exprs;
  std::string Err;
  ASSERT_TRUE(W.loadSource("counter <- 5", Exprs, Err)) << Err;
  const SlotDesc *S =
      W.lobby()->map()->findSlot(W.interner().intern("counter"));
  ASSERT_NE(S, nullptr);
  EXPECT_EQ(S->Kind, SlotKind::Data);
  EXPECT_EQ(W.lobby()->field(S->FieldIndex).asInt(), 5);
}

TEST_F(WorldTest, DuplicateDefinitionRejected) {
  std::vector<const ast::Code *> Exprs;
  std::string Err;
  ASSERT_TRUE(W.loadSource("dup = 1", Exprs, Err));
  EXPECT_FALSE(W.loadSource("dup = 2", Exprs, Err));
  EXPECT_NE(Err.find("already defined"), std::string::npos);
}

TEST_F(WorldTest, ObjectLiteralWithParent) {
  std::vector<const ast::Code *> Exprs;
  std::string Err;
  ASSERT_TRUE(
      W.loadSource("pt = ( | parent* = lobby. x <- 3 | )", Exprs, Err))
      << Err;
  const SlotDesc *S = W.lobby()->map()->findSlot(W.interner().intern("pt"));
  ASSERT_NE(S, nullptr);
  Object *Pt = S->Constant.asObject();
  // The data slot initial value landed in the object's field.
  const SlotDesc *X = Pt->map()->findSlot(W.interner().intern("x"));
  ASSERT_NE(X, nullptr);
  EXPECT_EQ(Pt->field(X->FieldIndex).asInt(), 3);
  // The lobby is reachable as a parent.
  LookupResult R =
      lookupSelector(W, Pt->map(), W.interner().intern("nil"));
  EXPECT_TRUE(R.found());
}

TEST_F(WorldTest, PathResolution) {
  std::vector<const ast::Code *> Exprs;
  std::string Err;
  ASSERT_TRUE(W.loadSource("outer = ( | inner = ( | v = 9 | ) | )", Exprs,
                           Err))
      << Err;
  ASSERT_TRUE(W.loadSource("alias = outer inner", Exprs, Err)) << Err;
  const SlotDesc *S =
      W.lobby()->map()->findSlot(W.interner().intern("alias"));
  ASSERT_NE(S, nullptr);
  LookupResult R =
      lookupSelector(W, S->Constant.asObject()->map(),
                     W.interner().intern("v"));
  ASSERT_EQ(R.ResultKind, LookupResult::Kind::Constant);
  EXPECT_EQ(R.Slot->Constant.asInt(), 9);
}

TEST_F(WorldTest, WorldSurvivesCollection) {
  H.collect();
  EXPECT_TRUE(W.trueValue().isObject());
  const std::string *Plus = W.interner().intern("+");
  LookupResult R = lookupSelector(W, W.smallIntMap(), Plus);
  EXPECT_EQ(R.ResultKind, LookupResult::Kind::Method);
}
