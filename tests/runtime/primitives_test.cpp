//===-- tests/runtime/primitives_test.cpp - Primitive unit tests -----------===//

#include "runtime/primitives.h"

#include "runtime/world.h"
#include "vm/object.h"

#include <gtest/gtest.h>

using namespace mself;

namespace {

class PrimTest : public ::testing::Test {
protected:
  Heap H;
  World W{H};

  Value run(PrimId Id, std::vector<Value> Win, bool ExpectOk = true) {
    Value R;
    bool Ok = execPrimitive(W, Id, Win.data(), R);
    EXPECT_EQ(Ok, ExpectOk) << W.primError();
    return R;
  }
};

} // namespace

TEST_F(PrimTest, IntArithmetic) {
  EXPECT_EQ(run(PrimId::IntAdd, {Value::fromInt(3), Value::fromInt(4)})
                .asInt(),
            7);
  EXPECT_EQ(run(PrimId::IntSub, {Value::fromInt(3), Value::fromInt(4)})
                .asInt(),
            -1);
  EXPECT_EQ(run(PrimId::IntMul, {Value::fromInt(6), Value::fromInt(7)})
                .asInt(),
            42);
  EXPECT_EQ(run(PrimId::IntDiv, {Value::fromInt(7), Value::fromInt(2)})
                .asInt(),
            3);
  EXPECT_EQ(run(PrimId::IntMod, {Value::fromInt(7), Value::fromInt(2)})
                .asInt(),
            1);
}

TEST_F(PrimTest, ArithmeticFailsOnNonInt) {
  run(PrimId::IntAdd, {Value::fromInt(3), W.nilValue()}, false);
  run(PrimId::IntAdd, {W.nilValue(), Value::fromInt(3)}, false);
}

TEST_F(PrimTest, ArithmeticFailsOnOverflow) {
  run(PrimId::IntAdd, {Value::fromInt(kMaxSmallInt), Value::fromInt(1)},
      false);
  run(PrimId::IntMul,
      {Value::fromInt(kMaxSmallInt / 2 + 1), Value::fromInt(2)}, false);
  run(PrimId::IntSub, {Value::fromInt(kMinSmallInt), Value::fromInt(1)},
      false);
}

TEST_F(PrimTest, DivisionByZeroFails) {
  run(PrimId::IntDiv, {Value::fromInt(1), Value::fromInt(0)}, false);
  run(PrimId::IntMod, {Value::fromInt(1), Value::fromInt(0)}, false);
}

TEST_F(PrimTest, Comparisons) {
  EXPECT_EQ(run(PrimId::IntLT, {Value::fromInt(1), Value::fromInt(2)}),
            W.trueValue());
  EXPECT_EQ(run(PrimId::IntGE, {Value::fromInt(1), Value::fromInt(2)}),
            W.falseValue());
  EXPECT_EQ(run(PrimId::IntEQ, {Value::fromInt(2), Value::fromInt(2)}),
            W.trueValue());
  run(PrimId::IntLT, {Value::fromInt(1), W.nilValue()}, false);
}

TEST_F(PrimTest, IdentityNeverFails) {
  EXPECT_EQ(run(PrimId::Eq, {W.nilValue(), W.nilValue()}), W.trueValue());
  EXPECT_EQ(run(PrimId::Eq, {W.nilValue(), Value::fromInt(0)}),
            W.falseValue());
}

TEST_F(PrimTest, VectorNewAndAccess) {
  Value V = run(PrimId::VectorNew, {W.lobbyValue(), Value::fromInt(3)});
  ASSERT_TRUE(V.isObject());
  EXPECT_EQ(run(PrimId::Size, {V}).asInt(), 3);
  EXPECT_EQ(run(PrimId::At, {V, Value::fromInt(0)}), W.nilValue());
  run(PrimId::AtPut, {V, Value::fromInt(2), Value::fromInt(99)});
  EXPECT_EQ(run(PrimId::At, {V, Value::fromInt(2)}).asInt(), 99);
}

TEST_F(PrimTest, BoundsChecksFail) {
  Value V = run(PrimId::VectorNew, {W.lobbyValue(), Value::fromInt(2)});
  run(PrimId::At, {V, Value::fromInt(2)}, false);
  run(PrimId::At, {V, Value::fromInt(-1)}, false);
  run(PrimId::AtPut, {V, Value::fromInt(5), Value::fromInt(0)}, false);
  run(PrimId::At, {V, W.nilValue()}, false);
  run(PrimId::At, {Value::fromInt(3), Value::fromInt(0)}, false);
}

TEST_F(PrimTest, VectorNewRejectsBadSizes) {
  run(PrimId::VectorNew, {W.lobbyValue(), Value::fromInt(-1)}, false);
  run(PrimId::VectorNew, {W.lobbyValue(), W.nilValue()}, false);
}

TEST_F(PrimTest, CloneCopiesFields) {
  std::vector<const ast::Code *> Exprs;
  std::string Err;
  ASSERT_TRUE(W.loadSource("proto = ( | x <- 5 | )", Exprs, Err)) << Err;
  const SlotDesc *S = W.lobby()->map()->findSlot(W.interner().intern("proto"));
  Value P = S->Constant;
  Value C = run(PrimId::Clone, {P});
  ASSERT_TRUE(C.isObject());
  EXPECT_NE(C.asObject(), P.asObject());
  EXPECT_EQ(C.asObject()->map(), P.asObject()->map());
  EXPECT_EQ(C.asObject()->field(0).asInt(), 5);
  // Mutating the clone leaves the prototype untouched.
  C.asObject()->setField(0, Value::fromInt(9));
  EXPECT_EQ(P.asObject()->field(0).asInt(), 5);
}

TEST_F(PrimTest, CloneIntIsIdentity) {
  EXPECT_EQ(run(PrimId::Clone, {Value::fromInt(3)}).asInt(), 3);
}

TEST_F(PrimTest, StringPrims) {
  Value A = Value::fromObject(W.newString("foo"));
  Value Bv = Value::fromObject(W.newString("bar"));
  Value C = run(PrimId::StrCat, {A, Bv});
  EXPECT_EQ(static_cast<StringObj *>(C.asObject())->str(), "foobar");
  EXPECT_EQ(run(PrimId::StrEq, {A, A}), W.trueValue());
  EXPECT_EQ(run(PrimId::StrEq, {A, Bv}), W.falseValue());
  run(PrimId::StrCat, {A, Value::fromInt(3)}, false);
}

TEST_F(PrimTest, ErrorPrimAlwaysFails) {
  Value Msg = Value::fromObject(W.newString("boom"));
  run(PrimId::ErrorOp, {W.lobbyValue(), Msg}, false);
  EXPECT_EQ(W.primError(), "boom");
}

TEST_F(PrimTest, PrimIdLookupBySelector) {
  EXPECT_EQ(primIdFor("_IntAdd:"), PrimId::IntAdd);
  EXPECT_EQ(primIdFor("_At:Put:"), PrimId::AtPut);
  EXPECT_EQ(primIdFor("_NoSuchPrim"), PrimId::Invalid);
  EXPECT_EQ(primInfo(PrimId::AtPut).Argc, 2);
  EXPECT_FALSE(primInfo(PrimId::Eq).CanFail);
}
