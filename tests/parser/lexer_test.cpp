//===-- tests/parser/lexer_test.cpp - Lexer unit tests ---------------------===//

#include "parser/lexer.h"

#include <gtest/gtest.h>

using namespace mself;

namespace {

std::vector<Token> lex(const std::string &S) {
  // Interned token text must outlive the returned tokens.
  static StringInterner In;
  return Lexer::tokenize(S, In);
}

std::vector<TokKind> kinds(const std::string &S) {
  std::vector<TokKind> K;
  for (const Token &T : lex(S))
    K.push_back(T.Kind);
  return K;
}

} // namespace

TEST(Lexer, IntegersAndIdents) {
  auto Toks = lex("foo 42 Bar");
  ASSERT_EQ(Toks.size(), 4u);
  EXPECT_EQ(Toks[0].Kind, TokKind::Ident);
  EXPECT_EQ(*Toks[0].Text, "foo");
  EXPECT_EQ(Toks[1].Kind, TokKind::Int);
  EXPECT_EQ(Toks[1].IntVal, 42);
  EXPECT_EQ(Toks[2].Kind, TokKind::Ident);
  EXPECT_EQ(Toks[3].Kind, TokKind::End);
}

TEST(Lexer, KeywordTokensAttachColon) {
  auto Toks = lex("at: i Put: v");
  EXPECT_EQ(Toks[0].Kind, TokKind::Keyword);
  EXPECT_EQ(*Toks[0].Text, "at:");
  EXPECT_EQ(Toks[2].Kind, TokKind::Keyword);
  EXPECT_EQ(*Toks[2].Text, "Put:");
}

TEST(Lexer, BlockArgColonIdent) {
  auto Toks = lex("[ :i | i ]");
  EXPECT_EQ(Toks[1].Kind, TokKind::ColonIdent);
  EXPECT_EQ(*Toks[1].Text, "i");
}

TEST(Lexer, OperatorsSplitCorrectly) {
  auto Toks = lex("a <= b == c <- 1 = 2");
  EXPECT_EQ(Toks[1].Kind, TokKind::BinOp);
  EXPECT_EQ(*Toks[1].Text, "<=");
  EXPECT_EQ(Toks[3].Kind, TokKind::BinOp);
  EXPECT_EQ(*Toks[3].Text, "==");
  EXPECT_EQ(Toks[5].Kind, TokKind::Arrow);
  EXPECT_EQ(Toks[7].Kind, TokKind::Equals);
}

TEST(Lexer, CommentsAreSkippedAndTrackLines) {
  auto Toks = lex("\"a comment\nover two lines\" foo");
  ASSERT_GE(Toks.size(), 1u);
  EXPECT_EQ(Toks[0].Kind, TokKind::Ident);
  EXPECT_EQ(Toks[0].Line, 2);
}

TEST(Lexer, StringLiteralsWithEscapes) {
  auto Toks = lex("'hi\\nthere'");
  EXPECT_EQ(Toks[0].Kind, TokKind::Str);
  EXPECT_EQ(Toks[0].StrVal, "hi\nthere");
}

TEST(Lexer, UnterminatedStringIsError) {
  auto Toks = lex("'oops");
  EXPECT_EQ(Toks.back().Kind, TokKind::Error);
}

TEST(Lexer, UnterminatedCommentIsError) {
  auto Toks = lex("\"oops");
  EXPECT_EQ(Toks.back().Kind, TokKind::Error);
}

TEST(Lexer, PrimitiveIdentifiers) {
  auto Toks = lex("_IntAdd: x _Print");
  EXPECT_EQ(Toks[0].Kind, TokKind::Keyword);
  EXPECT_EQ(*Toks[0].Text, "_IntAdd:");
  EXPECT_EQ(Toks[2].Kind, TokKind::Ident);
  EXPECT_EQ(*Toks[2].Text, "_Print");
}

TEST(Lexer, PunctuationKinds) {
  EXPECT_EQ(kinds("( ) [ ] | . ^"),
            (std::vector<TokKind>{TokKind::LParen, TokKind::RParen,
                                  TokKind::LBracket, TokKind::RBracket,
                                  TokKind::VBar, TokKind::Dot, TokKind::Caret,
                                  TokKind::End}));
}

TEST(Lexer, HugeIntegerLiteralIsError) {
  auto Toks = lex("99999999999999999999999999");
  EXPECT_EQ(Toks.back().Kind, TokKind::Error);
}
