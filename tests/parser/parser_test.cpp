//===-- tests/parser/parser_test.cpp - Parser unit tests -------------------===//

#include "parser/parser.h"

#include <gtest/gtest.h>

using namespace mself;
using namespace mself::ast;

namespace {

class ParserTest : public ::testing::Test {
protected:
  Program Prog;
  StringInterner In;

  ParseResult parse(const std::string &Src) {
    Parser P(Prog, In);
    return P.parseTopLevel(Src);
  }
};

} // namespace

TEST_F(ParserTest, ExpressionStatement) {
  ASSERT_TRUE(parse("3 + 4").Ok);
  ASSERT_EQ(Prog.TopLevel.size(), 1u);
  ASSERT_NE(Prog.TopLevel[0].ExprBody, nullptr);
  const Code *C = Prog.TopLevel[0].ExprBody;
  ASSERT_EQ(C->Body.size(), 1u);
  ASSERT_EQ(C->Body[0]->Kind, ExprKind::Send);
  const auto *S = static_cast<const Send *>(C->Body[0]);
  EXPECT_EQ(*S->Selector, "+");
  ASSERT_EQ(S->Args.size(), 1u);
  EXPECT_EQ(S->Recv->Kind, ExprKind::IntLit);
}

TEST_F(ParserTest, UnaryBinaryKeywordPrecedence) {
  // `a foo + b bar max: c` == `((a foo) + (b bar)) max: c`
  ASSERT_TRUE(parse("a foo + b bar max: c").Ok);
  const auto *S =
      static_cast<const Send *>(Prog.TopLevel[0].ExprBody->Body[0]);
  EXPECT_EQ(*S->Selector, "max:");
  const auto *Plus = static_cast<const Send *>(S->Recv);
  EXPECT_EQ(*Plus->Selector, "+");
  const auto *Foo = static_cast<const Send *>(Plus->Recv);
  EXPECT_EQ(*Foo->Selector, "foo");
}

TEST_F(ParserTest, SlotDefConstantInt) {
  ASSERT_TRUE(parse("answer = 42").Ok);
  ASSERT_NE(Prog.TopLevel[0].Slot, nullptr);
  const SlotDef *S = Prog.TopLevel[0].Slot;
  EXPECT_EQ(*S->Name, "answer");
  EXPECT_EQ(S->Kind, SlotKind::Constant);
  EXPECT_EQ(S->ValueKind, SlotValueKind::IntConst);
  EXPECT_EQ(S->IntValue, 42);
}

TEST_F(ParserTest, DataSlotDef) {
  ASSERT_TRUE(parse("counter <- 7").Ok);
  const SlotDef *S = Prog.TopLevel[0].Slot;
  EXPECT_EQ(S->Kind, SlotKind::Data);
  EXPECT_EQ(S->IntValue, 7);
}

TEST_F(ParserTest, KeywordMethodDef) {
  ASSERT_TRUE(parse("at: i Put: v = ( v )").Ok);
  const SlotDef *S = Prog.TopLevel[0].Slot;
  EXPECT_EQ(*S->Name, "at:Put:");
  EXPECT_EQ(S->ValueKind, SlotValueKind::Method);
  ASSERT_NE(S->MethodBody, nullptr);
  EXPECT_EQ(S->MethodBody->NumArgs, 2);
  EXPECT_EQ(*S->MethodBody->Slots[0].Name, "i");
  EXPECT_EQ(*S->MethodBody->Slots[1].Name, "v");
}

TEST_F(ParserTest, BinaryMethodDef) {
  ASSERT_TRUE(parse("+ n = ( n )").Ok);
  const SlotDef *S = Prog.TopLevel[0].Slot;
  EXPECT_EQ(*S->Name, "+");
  EXPECT_EQ(S->MethodBody->NumArgs, 1);
}

TEST_F(ParserTest, MethodLocalsWithInitializers) {
  ASSERT_TRUE(parse("m = ( | sum <- 0. name <- 'x' | sum )").Ok);
  const Code *C = Prog.TopLevel[0].Slot->MethodBody;
  ASSERT_EQ(C->Slots.size(), 2u);
  EXPECT_TRUE(C->Slots[0].InitIsInt);
  EXPECT_EQ(C->Slots[0].InitInt, 0);
  ASSERT_NE(C->Slots[1].InitStr, nullptr);
  // `sum` resolves to a local, not a send.
  EXPECT_EQ(C->Body[0]->Kind, ExprKind::VarGet);
}

TEST_F(ParserTest, LocalAssignmentBecomesVarSet) {
  ASSERT_TRUE(parse("m = ( | x <- 0 | x: x + 1. x )").Ok);
  const Code *C = Prog.TopLevel[0].Slot->MethodBody;
  ASSERT_EQ(C->Body.size(), 2u);
  ASSERT_EQ(C->Body[0]->Kind, ExprKind::VarSet);
  const auto *VS = static_cast<const VarSet *>(C->Body[0]);
  EXPECT_EQ(*VS->Name, "x");
  EXPECT_EQ(VS->Val->Kind, ExprKind::Send);
}

TEST_F(ParserTest, UnknownNameIsImplicitSelfSend) {
  ASSERT_TRUE(parse("m = ( someGlobal )").Ok);
  const Code *C = Prog.TopLevel[0].Slot->MethodBody;
  ASSERT_EQ(C->Body[0]->Kind, ExprKind::Send);
  const auto *S = static_cast<const Send *>(C->Body[0]);
  EXPECT_EQ(S->Recv, nullptr);
  EXPECT_EQ(*S->Selector, "someGlobal");
}

TEST_F(ParserTest, BlockCaptureMarksEnvStorage) {
  ASSERT_TRUE(parse("m = ( | sum <- 0 | [ sum ] value. sum )").Ok);
  const Code *C = Prog.TopLevel[0].Slot->MethodBody;
  EXPECT_EQ(C->Slots[0].Storage, VarStorage::Env);
  EXPECT_TRUE(C->HasCaptured);
  EXPECT_EQ(C->EnvSlotCount, 1);
  EXPECT_EQ(C->EnvLevel, 1);
  ASSERT_EQ(C->ChildScopes.size(), 1u);
  EXPECT_EQ(C->ChildScopes[0]->EnvLevel, 1); // block captures nothing itself
}

TEST_F(ParserTest, UncapturedLocalStaysInRegister) {
  ASSERT_TRUE(parse("m = ( | x <- 0 | x: 1. x )").Ok);
  const Code *C = Prog.TopLevel[0].Slot->MethodBody;
  EXPECT_EQ(C->Slots[0].Storage, VarStorage::Reg);
  EXPECT_FALSE(C->HasCaptured);
}

TEST_F(ParserTest, NestedBlockCapture) {
  ASSERT_TRUE(parse("m = ( | x <- 0 | [ [ x ] value ] value )").Ok);
  const Code *C = Prog.TopLevel[0].Slot->MethodBody;
  EXPECT_EQ(C->Slots[0].Storage, VarStorage::Env);
  const Code *B1 = C->ChildScopes[0];
  const Code *B2 = B1->ChildScopes[0];
  EXPECT_EQ(C->EnvLevel, 1);
  EXPECT_EQ(B1->EnvLevel, 1);
  EXPECT_EQ(B2->EnvLevel, 1);
}

TEST_F(ParserTest, BlockArgsBothSyntaxes) {
  ASSERT_TRUE(parse("m = ( [ :a :b | a ] value: 1 With: 2 )").Ok);
  ASSERT_TRUE(parse("m2 = ( [ | :a. :b | b ] value: 1 With: 2 )").Ok);
}

TEST_F(ParserTest, CaretReturn) {
  ASSERT_TRUE(parse("m = ( [ ^ 5 ] value. 9 )").Ok);
  const Code *C = Prog.TopLevel[0].Slot->MethodBody;
  const Code *B = C->ChildScopes[0];
  ASSERT_EQ(B->Body.size(), 1u);
  EXPECT_EQ(B->Body[0]->Kind, ExprKind::Return);
}

TEST_F(ParserTest, PrimitiveCallWithIfFail) {
  ASSERT_TRUE(parse("m = ( 3 _IntAdd: 4 IfFail: [ 0 ] )").Ok);
  const Code *C = Prog.TopLevel[0].Slot->MethodBody;
  ASSERT_EQ(C->Body[0]->Kind, ExprKind::PrimCall);
  const auto *P = static_cast<const PrimCall *>(C->Body[0]);
  EXPECT_EQ(*P->Selector, "_IntAdd:");
  ASSERT_EQ(P->Args.size(), 1u);
  ASSERT_NE(P->OnFail, nullptr);
  EXPECT_EQ(P->OnFail->Kind, ExprKind::BlockLit);
}

TEST_F(ParserTest, ObjectLiteralSlotValue) {
  ASSERT_TRUE(
      parse("point = ( | x <- 0. y <- 0. sum = ( x + y ) | )").Ok);
  const SlotDef *S = Prog.TopLevel[0].Slot;
  EXPECT_EQ(S->ValueKind, SlotValueKind::ObjectLit);
  ASSERT_NE(S->Object, nullptr);
  ASSERT_EQ(S->Object->Slots.size(), 3u);
  EXPECT_EQ(S->Object->Slots[0].Kind, SlotKind::Data);
  EXPECT_EQ(S->Object->Slots[2].ValueKind, SlotValueKind::Method);
}

TEST_F(ParserTest, ParentSlot) {
  ASSERT_TRUE(parse("o = ( | parent* = lobby. v = 3 | )").Ok);
  const ObjectLit *O = Prog.TopLevel[0].Slot->Object;
  ASSERT_NE(O, nullptr);
  EXPECT_EQ(O->Slots[0].Kind, SlotKind::Parent);
  EXPECT_EQ(O->Slots[0].ValueKind, SlotValueKind::PathExpr);
  ASSERT_EQ(O->Slots[0].PathNames.size(), 1u);
  EXPECT_EQ(*O->Slots[0].PathNames[0], "lobby");
}

TEST_F(ParserTest, ErrorsReported) {
  EXPECT_FALSE(parse("m = (").Ok);
  EXPECT_FALSE(parse("3 +").Ok);
  EXPECT_FALSE(parse("x <- [ 1 ]").Ok); // data slot needs a literal
}

TEST_F(ParserTest, MultipleTopLevelItems) {
  ASSERT_TRUE(parse("a = 1. b = 2. a").Ok);
  EXPECT_EQ(Prog.TopLevel.size(), 3u);
  EXPECT_NE(Prog.TopLevel[0].Slot, nullptr);
  EXPECT_NE(Prog.TopLevel[1].Slot, nullptr);
  EXPECT_NE(Prog.TopLevel[2].ExprBody, nullptr);
}

TEST_F(ParserTest, SelfKeyword) {
  ASSERT_TRUE(parse("m = ( self )").Ok);
  EXPECT_EQ(Prog.TopLevel[0].Slot->MethodBody->Body[0]->Kind,
            ExprKind::SelfRef);
}
