file(REMOVE_RECURSE
  "CMakeFiles/triangle_number.dir/triangle_number.cpp.o"
  "CMakeFiles/triangle_number.dir/triangle_number.cpp.o.d"
  "triangle_number"
  "triangle_number.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/triangle_number.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
