# Empty compiler generated dependencies file for triangle_number.
# This may be replaced when dependencies are built.
