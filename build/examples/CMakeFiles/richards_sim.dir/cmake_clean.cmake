file(REMOVE_RECURSE
  "CMakeFiles/richards_sim.dir/richards_sim.cpp.o"
  "CMakeFiles/richards_sim.dir/richards_sim.cpp.o.d"
  "richards_sim"
  "richards_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/richards_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
