# Empty dependencies file for richards_sim.
# This may be replaced when dependencies are built.
