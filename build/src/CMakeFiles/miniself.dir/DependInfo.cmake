
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bytecode/bytecode.cpp" "src/CMakeFiles/miniself.dir/bytecode/bytecode.cpp.o" "gcc" "src/CMakeFiles/miniself.dir/bytecode/bytecode.cpp.o.d"
  "/root/repo/src/bytecode/disasm.cpp" "src/CMakeFiles/miniself.dir/bytecode/disasm.cpp.o" "gcc" "src/CMakeFiles/miniself.dir/bytecode/disasm.cpp.o.d"
  "/root/repo/src/compiler/analyze.cpp" "src/CMakeFiles/miniself.dir/compiler/analyze.cpp.o" "gcc" "src/CMakeFiles/miniself.dir/compiler/analyze.cpp.o.d"
  "/root/repo/src/compiler/cfg.cpp" "src/CMakeFiles/miniself.dir/compiler/cfg.cpp.o" "gcc" "src/CMakeFiles/miniself.dir/compiler/cfg.cpp.o.d"
  "/root/repo/src/compiler/codegen_baseline.cpp" "src/CMakeFiles/miniself.dir/compiler/codegen_baseline.cpp.o" "gcc" "src/CMakeFiles/miniself.dir/compiler/codegen_baseline.cpp.o.d"
  "/root/repo/src/compiler/compile.cpp" "src/CMakeFiles/miniself.dir/compiler/compile.cpp.o" "gcc" "src/CMakeFiles/miniself.dir/compiler/compile.cpp.o.d"
  "/root/repo/src/compiler/loops.cpp" "src/CMakeFiles/miniself.dir/compiler/loops.cpp.o" "gcc" "src/CMakeFiles/miniself.dir/compiler/loops.cpp.o.d"
  "/root/repo/src/compiler/lower.cpp" "src/CMakeFiles/miniself.dir/compiler/lower.cpp.o" "gcc" "src/CMakeFiles/miniself.dir/compiler/lower.cpp.o.d"
  "/root/repo/src/compiler/policy.cpp" "src/CMakeFiles/miniself.dir/compiler/policy.cpp.o" "gcc" "src/CMakeFiles/miniself.dir/compiler/policy.cpp.o.d"
  "/root/repo/src/compiler/prims.cpp" "src/CMakeFiles/miniself.dir/compiler/prims.cpp.o" "gcc" "src/CMakeFiles/miniself.dir/compiler/prims.cpp.o.d"
  "/root/repo/src/compiler/split.cpp" "src/CMakeFiles/miniself.dir/compiler/split.cpp.o" "gcc" "src/CMakeFiles/miniself.dir/compiler/split.cpp.o.d"
  "/root/repo/src/compiler/type.cpp" "src/CMakeFiles/miniself.dir/compiler/type.cpp.o" "gcc" "src/CMakeFiles/miniself.dir/compiler/type.cpp.o.d"
  "/root/repo/src/driver/vm.cpp" "src/CMakeFiles/miniself.dir/driver/vm.cpp.o" "gcc" "src/CMakeFiles/miniself.dir/driver/vm.cpp.o.d"
  "/root/repo/src/interp/interp.cpp" "src/CMakeFiles/miniself.dir/interp/interp.cpp.o" "gcc" "src/CMakeFiles/miniself.dir/interp/interp.cpp.o.d"
  "/root/repo/src/parser/ast.cpp" "src/CMakeFiles/miniself.dir/parser/ast.cpp.o" "gcc" "src/CMakeFiles/miniself.dir/parser/ast.cpp.o.d"
  "/root/repo/src/parser/lexer.cpp" "src/CMakeFiles/miniself.dir/parser/lexer.cpp.o" "gcc" "src/CMakeFiles/miniself.dir/parser/lexer.cpp.o.d"
  "/root/repo/src/parser/parser.cpp" "src/CMakeFiles/miniself.dir/parser/parser.cpp.o" "gcc" "src/CMakeFiles/miniself.dir/parser/parser.cpp.o.d"
  "/root/repo/src/runtime/corelib.cpp" "src/CMakeFiles/miniself.dir/runtime/corelib.cpp.o" "gcc" "src/CMakeFiles/miniself.dir/runtime/corelib.cpp.o.d"
  "/root/repo/src/runtime/lookup.cpp" "src/CMakeFiles/miniself.dir/runtime/lookup.cpp.o" "gcc" "src/CMakeFiles/miniself.dir/runtime/lookup.cpp.o.d"
  "/root/repo/src/runtime/primitives.cpp" "src/CMakeFiles/miniself.dir/runtime/primitives.cpp.o" "gcc" "src/CMakeFiles/miniself.dir/runtime/primitives.cpp.o.d"
  "/root/repo/src/runtime/selector.cpp" "src/CMakeFiles/miniself.dir/runtime/selector.cpp.o" "gcc" "src/CMakeFiles/miniself.dir/runtime/selector.cpp.o.d"
  "/root/repo/src/runtime/world.cpp" "src/CMakeFiles/miniself.dir/runtime/world.cpp.o" "gcc" "src/CMakeFiles/miniself.dir/runtime/world.cpp.o.d"
  "/root/repo/src/support/interner.cpp" "src/CMakeFiles/miniself.dir/support/interner.cpp.o" "gcc" "src/CMakeFiles/miniself.dir/support/interner.cpp.o.d"
  "/root/repo/src/support/stats.cpp" "src/CMakeFiles/miniself.dir/support/stats.cpp.o" "gcc" "src/CMakeFiles/miniself.dir/support/stats.cpp.o.d"
  "/root/repo/src/support/stopwatch.cpp" "src/CMakeFiles/miniself.dir/support/stopwatch.cpp.o" "gcc" "src/CMakeFiles/miniself.dir/support/stopwatch.cpp.o.d"
  "/root/repo/src/vm/heap.cpp" "src/CMakeFiles/miniself.dir/vm/heap.cpp.o" "gcc" "src/CMakeFiles/miniself.dir/vm/heap.cpp.o.d"
  "/root/repo/src/vm/map.cpp" "src/CMakeFiles/miniself.dir/vm/map.cpp.o" "gcc" "src/CMakeFiles/miniself.dir/vm/map.cpp.o.d"
  "/root/repo/src/vm/object.cpp" "src/CMakeFiles/miniself.dir/vm/object.cpp.o" "gcc" "src/CMakeFiles/miniself.dir/vm/object.cpp.o.d"
  "/root/repo/src/vm/value.cpp" "src/CMakeFiles/miniself.dir/vm/value.cpp.o" "gcc" "src/CMakeFiles/miniself.dir/vm/value.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
