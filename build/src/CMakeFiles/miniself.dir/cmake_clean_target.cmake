file(REMOVE_RECURSE
  "libminiself.a"
)
