# Empty compiler generated dependencies file for miniself.
# This may be replaced when dependencies are built.
