file(REMOVE_RECURSE
  "CMakeFiles/appendix_c_compile.dir/appendix_c_compile.cpp.o"
  "CMakeFiles/appendix_c_compile.dir/appendix_c_compile.cpp.o.d"
  "appendix_c_compile"
  "appendix_c_compile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/appendix_c_compile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
