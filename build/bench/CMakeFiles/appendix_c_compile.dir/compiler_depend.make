# Empty compiler generated dependencies file for appendix_c_compile.
# This may be replaced when dependencies are built.
