file(REMOVE_RECURSE
  "CMakeFiles/table_speed.dir/table_speed.cpp.o"
  "CMakeFiles/table_speed.dir/table_speed.cpp.o.d"
  "table_speed"
  "table_speed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_speed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
