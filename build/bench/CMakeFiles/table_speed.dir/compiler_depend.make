# Empty compiler generated dependencies file for table_speed.
# This may be replaced when dependencies are built.
