file(REMOVE_RECURSE
  "CMakeFiles/appendix_a_speed.dir/appendix_a_speed.cpp.o"
  "CMakeFiles/appendix_a_speed.dir/appendix_a_speed.cpp.o.d"
  "appendix_a_speed"
  "appendix_a_speed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/appendix_a_speed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
