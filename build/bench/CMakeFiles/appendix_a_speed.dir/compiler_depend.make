# Empty compiler generated dependencies file for appendix_a_speed.
# This may be replaced when dependencies are built.
