file(REMOVE_RECURSE
  "CMakeFiles/appendix_b_size.dir/appendix_b_size.cpp.o"
  "CMakeFiles/appendix_b_size.dir/appendix_b_size.cpp.o.d"
  "appendix_b_size"
  "appendix_b_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/appendix_b_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
