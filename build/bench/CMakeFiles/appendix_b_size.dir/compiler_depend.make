# Empty compiler generated dependencies file for appendix_b_size.
# This may be replaced when dependencies are built.
