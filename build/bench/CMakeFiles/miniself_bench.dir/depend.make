# Empty dependencies file for miniself_bench.
# This may be replaced when dependencies are built.
