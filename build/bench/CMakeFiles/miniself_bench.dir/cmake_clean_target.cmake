file(REMOVE_RECURSE
  "libminiself_bench.a"
)
