file(REMOVE_RECURSE
  "CMakeFiles/miniself_bench.dir/harness.cpp.o"
  "CMakeFiles/miniself_bench.dir/harness.cpp.o.d"
  "CMakeFiles/miniself_bench.dir/native.cpp.o"
  "CMakeFiles/miniself_bench.dir/native.cpp.o.d"
  "CMakeFiles/miniself_bench.dir/suites.cpp.o"
  "CMakeFiles/miniself_bench.dir/suites.cpp.o.d"
  "libminiself_bench.a"
  "libminiself_bench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/miniself_bench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
