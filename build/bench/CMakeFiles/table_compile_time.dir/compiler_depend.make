# Empty compiler generated dependencies file for table_compile_time.
# This may be replaced when dependencies are built.
