file(REMOVE_RECURSE
  "CMakeFiles/table_compile_time.dir/table_compile_time.cpp.o"
  "CMakeFiles/table_compile_time.dir/table_compile_time.cpp.o.d"
  "table_compile_time"
  "table_compile_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_compile_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
