file(REMOVE_RECURSE
  "CMakeFiles/corelib_test.dir/runtime/corelib_test.cpp.o"
  "CMakeFiles/corelib_test.dir/runtime/corelib_test.cpp.o.d"
  "corelib_test"
  "corelib_test.pdb"
  "corelib_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/corelib_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
