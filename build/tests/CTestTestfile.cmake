# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/support_test[1]_include.cmake")
include("/root/repo/build/tests/vm_test[1]_include.cmake")
include("/root/repo/build/tests/parser_test[1]_include.cmake")
include("/root/repo/build/tests/runtime_test[1]_include.cmake")
include("/root/repo/build/tests/interp_test[1]_include.cmake")
include("/root/repo/build/tests/bytecode_test[1]_include.cmake")
include("/root/repo/build/tests/corelib_test[1]_include.cmake")
include("/root/repo/build/tests/compiler_test[1]_include.cmake")
